//! Address-code generation from allocations.
//!
//! Code generation turns a [`PathCover`] (one path per address register)
//! into the concrete [`AddressProgram`] the loop executes: a prologue that
//! points every register at the address of its first access, and a body
//! that serves each access in sequence order, attaching the register's
//! post-modify to the access when it is free (in range or held by a modify
//! register) and emitting an explicit `ADDA` — the paper's unit cost —
//! otherwise.

use std::fmt;

use raco_core::{Allocation, LoopAllocation};
use raco_graph::{DistanceModel, PathCover};
use raco_ir::{AccessPattern, AguSpec, ArrayId, LoopSpec, MemoryLayout};

use crate::isa::{AddressInstr, AddressProgram, MrId, RegId, Update};
use crate::modify::ModifyAllocation;

/// Errors produced during code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeGenError {
    /// The allocations need more address registers than the machine has.
    RegisterBudgetExceeded {
        /// Registers required by the allocation.
        needed: usize,
        /// Registers the machine provides.
        available: usize,
    },
    /// The memory layout does not assign a base address to an accessed
    /// array.
    LayoutMissingArray {
        /// The uncovered array.
        array: ArrayId,
    },
    /// A cover does not match its pattern (wrong access count).
    CoverMismatch {
        /// Accesses in the pattern.
        pattern_len: usize,
        /// Accesses covered by the allocation.
        cover_len: usize,
    },
}

impl fmt::Display for CodeGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeGenError::RegisterBudgetExceeded { needed, available } => write!(
                f,
                "allocation uses {needed} address registers but the machine has {available}"
            ),
            CodeGenError::LayoutMissingArray { array } => {
                write!(f, "memory layout does not place {array}")
            }
            CodeGenError::CoverMismatch {
                pattern_len,
                cover_len,
            } => write!(
                f,
                "cover spans {cover_len} accesses but the pattern has {pattern_len}"
            ),
        }
    }
}

impl std::error::Error for CodeGenError {}

/// Generates address programs for a fixed machine.
///
/// # Examples
///
/// See the crate-level example of [`raco_agu`](crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeGenerator {
    agu: AguSpec,
}

impl CodeGenerator {
    /// A generator targeting `agu`.
    pub fn new(agu: AguSpec) -> Self {
        CodeGenerator { agu }
    }

    /// The target machine.
    pub fn agu(&self) -> &AguSpec {
        &self.agu
    }

    /// Generates the address program of a whole loop from its per-array
    /// allocation. Registers are numbered consecutively across arrays;
    /// modify registers (if the machine has any) are allocated globally by
    /// delta frequency.
    ///
    /// # Errors
    ///
    /// See [`CodeGenError`].
    pub fn generate(
        &self,
        spec: &LoopSpec,
        alloc: &LoopAllocation,
        layout: &MemoryLayout,
    ) -> Result<AddressProgram, CodeGenError> {
        // `per_array` hands out `Arc<Allocation>`s shared with the
        // allocation cache; codegen only ever borrows them.
        let mut parts: Vec<(AccessPattern, &Allocation, i64)> = Vec::new();
        for (array, allocation) in alloc.per_array() {
            let allocation: &Allocation = allocation;
            let pattern = spec
                .pattern_for(*array)
                .expect("allocation refers to accessed arrays");
            let base = layout
                .base(*array)
                .ok_or(CodeGenError::LayoutMissingArray { array: *array })?;
            let coeff = spec
                .array_info(*array)
                .expect("accessed arrays are registered")
                .coefficient();
            let origin = base + coeff * spec.start();
            parts.push((pattern, allocation, origin));
        }
        let total_accesses = spec.len();
        let modify = ModifyAllocation::for_covers(
            parts
                .iter()
                .map(|(_, a, _)| (a.cover(), a.distance_model())),
            self.agu.modify_registers(),
        );
        let covers: Vec<(&AccessPattern, &PathCover, &DistanceModel, i64)> = parts
            .iter()
            .map(|(p, a, origin)| (p, a.cover(), a.distance_model(), *origin))
            .collect();
        let (program, registers) = self.assemble(&covers, total_accesses, &modify)?;
        Ok(program.with_carries(Self::carry_blocks(spec, &parts, &registers)))
    }

    /// Builds the outer-loop carry blocks of a flattened nest: whenever
    /// nest level `k` advances (every `periods()[k]` iterations), every
    /// address register serving an array with a non-zero carry at that
    /// level is adjusted by the carry. `registers[p]` is the register
    /// assignment [`CodeGenerator::assemble`] made for `parts[p]`'s
    /// cover, so the mapping cannot drift from the generated body.
    fn carry_blocks(
        spec: &LoopSpec,
        parts: &[(AccessPattern, &Allocation, i64)],
        registers: &[Vec<RegId>],
    ) -> Vec<crate::isa::CarryBlock> {
        let Some(nest) = spec.nest() else {
            return Vec::new();
        };
        let periods = nest.periods();
        let mut blocks = Vec::new();
        for (level, &period) in periods.iter().enumerate() {
            let mut instrs = Vec::new();
            for ((pattern, _, _), regs) in parts.iter().zip(registers) {
                let carry = spec
                    .array_info(pattern.array())
                    .and_then(|info| info.carries().get(level).copied())
                    .unwrap_or(0);
                if carry != 0 {
                    instrs.extend(
                        regs.iter()
                            .map(|&reg| AddressInstr::Adda { reg, delta: carry }),
                    );
                }
            }
            if !instrs.is_empty() {
                blocks.push(crate::isa::CarryBlock { period, instrs });
            }
        }
        blocks
    }

    /// Generates the address program of a single pattern under an
    /// existing allocation.
    ///
    /// `origin` is the address of offset `0` at the first iteration
    /// (`base + coefficient * loop_start`); `USE` positions are the
    /// pattern's global positions.
    ///
    /// # Errors
    ///
    /// See [`CodeGenError`].
    pub fn generate_pattern(
        &self,
        pattern: &AccessPattern,
        allocation: &Allocation,
        origin: i64,
    ) -> Result<AddressProgram, CodeGenError> {
        if allocation.cover().accesses() != pattern.len() {
            return Err(CodeGenError::CoverMismatch {
                pattern_len: pattern.len(),
                cover_len: allocation.cover().accesses(),
            });
        }
        let modify = ModifyAllocation::for_cover(
            allocation.cover(),
            allocation.distance_model(),
            self.agu.modify_registers(),
        );
        let total = pattern.position(pattern.len() - 1) + 1;
        let (program, _) = self.assemble(
            &[(
                pattern,
                allocation.cover(),
                allocation.distance_model(),
                origin,
            )],
            total,
            &modify,
        )?;
        Ok(program)
    }

    /// Assembles prologue and body; also returns, per cover, the
    /// address registers assigned to its paths (in path order), so
    /// callers that emit extra per-register code (carry blocks) share
    /// one numbering.
    fn assemble(
        &self,
        covers: &[(&AccessPattern, &PathCover, &DistanceModel, i64)],
        total_accesses: usize,
        modify: &ModifyAllocation,
    ) -> Result<(AddressProgram, Vec<Vec<RegId>>), CodeGenError> {
        let needed: usize = covers.iter().map(|(_, c, _, _)| c.register_count()).sum();
        if needed > self.agu.address_registers() {
            return Err(CodeGenError::RegisterBudgetExceeded {
                needed,
                available: self.agu.address_registers(),
            });
        }
        for (pattern, cover, _, _) in covers {
            if cover.accesses() != pattern.len() {
                return Err(CodeGenError::CoverMismatch {
                    pattern_len: pattern.len(),
                    cover_len: cover.accesses(),
                });
            }
        }

        let mut prologue = Vec::new();
        // slot[global position] = (register, post-access delta)
        let mut slots: Vec<Option<(RegId, i64)>> = vec![None; total_accesses];
        let mut registers: Vec<Vec<RegId>> = Vec::with_capacity(covers.len());
        let mut next_reg: u16 = 0;
        for (pattern, cover, dm, origin) in covers {
            let mut cover_regs = Vec::with_capacity(cover.paths().len());
            for path in cover.paths() {
                let reg = RegId(next_reg);
                next_reg += 1;
                cover_regs.push(reg);
                prologue.push(AddressInstr::Lda {
                    reg,
                    address: origin + pattern.offset(path.head()),
                });
                let idx = path.indices();
                for (k, &local) in idx.iter().enumerate() {
                    let delta = if k + 1 < idx.len() {
                        dm.intra_distance(local, idx[k + 1])
                    } else {
                        dm.wrap_distance(local, path.head())
                    };
                    slots[pattern.position(local)] = Some((reg, delta));
                }
            }
            registers.push(cover_regs);
        }
        for (mr, &value) in modify.values().iter().enumerate() {
            prologue.push(AddressInstr::Ldm {
                mr: MrId(mr as u16),
                value,
            });
        }

        let mut body = Vec::new();
        for (position, slot) in slots.iter().enumerate() {
            let (reg, delta) = slot.ok_or(CodeGenError::CoverMismatch {
                pattern_len: total_accesses,
                cover_len: slots.iter().filter(|s| s.is_some()).count(),
            })?;
            if self.agu.is_free_delta(delta) {
                body.push(AddressInstr::Use {
                    reg,
                    position,
                    update: Update::Auto { delta },
                });
            } else if let Some(mr) = modify.register_for(delta) {
                body.push(AddressInstr::Use {
                    reg,
                    position,
                    update: Update::Modify {
                        mr: MrId(mr as u16),
                    },
                });
            } else {
                body.push(AddressInstr::Use {
                    reg,
                    position,
                    update: Update::None,
                });
                body.push(AddressInstr::Adda { reg, delta });
            }
        }
        Ok((
            AddressProgram::new(
                prologue,
                body,
                usize::from(next_reg),
                modify.values().to_vec(),
            )
            .with_cost_table(self.agu.cost_table()),
            registers,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_core::Optimizer;
    use raco_ir::examples;

    fn paper_setup(k: usize) -> (LoopSpec, AddressProgram) {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(k, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0x100, 256);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        (spec, program)
    }

    #[test]
    fn zero_cost_allocation_emits_no_addas() {
        let (_, program) = paper_setup(3);
        assert_eq!(program.cycles_per_iteration(), 0);
        assert_eq!(program.uses_per_iteration(), 7);
        assert_eq!(program.address_registers(), 3);
        // Prologue: one LDA per register.
        assert_eq!(program.prologue_cycles(), 3);
    }

    #[test]
    fn constrained_allocation_emits_exactly_cost_many_addas() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(2, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        assert_eq!(
            program.cycles_per_iteration(),
            u64::from(alloc.total_cost()),
            "allocator-predicted cost must equal emitted ADDAs"
        );
    }

    #[test]
    fn use_positions_are_complete_and_ordered() {
        let (spec, program) = paper_setup(3);
        let positions: Vec<usize> = program
            .body()
            .iter()
            .filter_map(|i| match i {
                AddressInstr::Use { position, .. } => Some(*position),
                _ => None,
            })
            .collect();
        assert_eq!(positions, (0..spec.len()).collect::<Vec<_>>());
    }

    #[test]
    fn prologue_points_registers_at_first_accesses() {
        let (_, program) = paper_setup(3);
        // Loop starts at i = 2, array A at 0x100: the cover's heads are
        // offsets 1, 0 and -2 → addresses 0x103, 0x102, 0x100.
        let mut addresses: Vec<i64> = program
            .prologue()
            .iter()
            .filter_map(|i| match i {
                AddressInstr::Lda { address, .. } => Some(*address),
                _ => None,
            })
            .collect();
        addresses.sort_unstable();
        assert_eq!(addresses, vec![0x100, 0x102, 0x103]);
    }

    #[test]
    fn register_budget_is_enforced() {
        let spec = examples::paper_loop();
        // Allocate for a generous machine, then try to emit for a tiny one.
        let alloc = Optimizer::new(AguSpec::new(3, 1).unwrap())
            .allocate_loop(&spec)
            .unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let err = CodeGenerator::new(AguSpec::new(1, 1).unwrap())
            .generate(&spec, &alloc, &layout)
            .unwrap_err();
        assert_eq!(
            err,
            CodeGenError::RegisterBudgetExceeded {
                needed: 3,
                available: 1
            }
        );
    }

    #[test]
    fn missing_layout_entry_is_reported() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(3, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let empty_layout = MemoryLayout::from_bases(vec![]);
        let err = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &empty_layout)
            .unwrap_err();
        assert!(matches!(err, CodeGenError::LayoutMissingArray { .. }));
    }

    #[test]
    fn modify_registers_absorb_over_range_deltas() {
        // Scattered pattern: chained on one register the +10 deltas repeat.
        let spec = examples::scattered();
        let agu_plain = AguSpec::new(1, 1).unwrap();
        let agu_mr = AguSpec::new(1, 1).unwrap().with_modify_registers(2);
        let layout = MemoryLayout::contiguous(&spec, 0, 256);

        let alloc = Optimizer::new(agu_plain).allocate_loop(&spec).unwrap();
        let plain = CodeGenerator::new(agu_plain)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let with_mr = CodeGenerator::new(agu_mr)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        assert!(
            with_mr.cycles_per_iteration() < plain.cycles_per_iteration(),
            "modify registers must eliminate repeated deltas: {} vs {}",
            with_mr.cycles_per_iteration(),
            plain.cycles_per_iteration()
        );
        assert!(!with_mr.modify_values().is_empty());
        assert!(with_mr
            .prologue()
            .iter()
            .any(|i| matches!(i, AddressInstr::Ldm { .. })));
    }

    #[test]
    fn generate_pattern_matches_loop_generation_for_single_array() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(2, 1).unwrap();
        let opt = Optimizer::new(agu);
        let pattern = spec.patterns().remove(0);
        let allocation = opt.allocate(&pattern);
        let program = CodeGenerator::new(agu)
            .generate_pattern(&pattern, &allocation, 0x200)
            .unwrap();
        assert_eq!(program.uses_per_iteration(), 7);
        assert_eq!(program.cycles_per_iteration(), u64::from(allocation.cost()));
    }

    #[test]
    fn multi_array_loops_interleave_registers() {
        let spec = examples::three_tap();
        let agu = AguSpec::new(4, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 1024);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        assert_eq!(program.uses_per_iteration(), 4); // 3 reads + 1 write
        assert_eq!(program.cycles_per_iteration(), 0);
        let regs: std::collections::HashSet<u16> = program
            .body()
            .iter()
            .filter_map(|i| match i {
                AddressInstr::Use { reg, .. } => Some(reg.0),
                _ => None,
            })
            .collect();
        assert_eq!(regs.len(), program.address_registers());
    }
}
