//! Modify-register allocation — re-exported from `raco-graph`.
//!
//! [`ModifyAllocation`] used to live here, applied only at code
//! generation: the allocator priced every over-range delta at one cycle
//! and codegen absorbed what it could *afterwards*, so on MR-equipped
//! machines the predicted cost overshot the measured cost. The ranking
//! now lives in [`raco_graph::ModifyAllocation`], one layer below both
//! consumers, so the allocator's cost model (`raco_core::CostModel`)
//! and this crate's code generator price exactly the same machine. This
//! module remains as a re-export so `raco_agu::modify::ModifyAllocation`
//! keeps working for existing callers (experiments, tests).

pub use raco_graph::ModifyAllocation;

#[cfg(test)]
mod tests {
    use super::*;
    use raco_graph::{DistanceModel, PathCover};

    /// The re-exported type is the shared one: values picked here are
    /// exactly what codegen loads and what the cost model prices free.
    #[test]
    fn reexport_is_the_shared_allocator() {
        let dm = DistanceModel::from_offsets(&[0, 7, 14, 21], 22, 1);
        let cover = PathCover::single_chain(4);
        let a: ModifyAllocation = ModifyAllocation::for_cover(&cover, &dm, 1);
        let b = raco_graph::ModifyAllocation::for_cover(&cover, &dm, 1);
        assert_eq!(a, b);
        assert_eq!(a.values(), &[7]);
    }
}
