//! Paths and path covers over an access pattern.
//!
//! A *path* is an order-preserving subsequence of the access pattern: the
//! accesses one address register serves each iteration. A *path cover*
//! partitions all accesses into node-disjoint paths — one per (virtual or
//! physical) address register. Both phases of the paper's algorithm
//! (Section 3) manipulate these objects: Phase 1 finds a minimum zero-cost
//! cover, Phase 2 merges paths until the register constraint is met.

use std::fmt;

use crate::distance::DistanceModel;

/// Errors produced when constructing a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// Paths must contain at least one access.
    Empty,
    /// Access indices must be strictly increasing (the merge operation `⊕`
    /// "retains the order of array accesses in the original access
    /// pattern", Section 3.2).
    NotIncreasing {
        /// Position within the index list where monotonicity broke.
        at: usize,
    },
    /// The two paths being merged share an access.
    Overlapping {
        /// The access index present in both paths.
        index: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => f.write_str("a path must contain at least one access"),
            PathError::NotIncreasing { at } => {
                write!(
                    f,
                    "path indices must be strictly increasing (violated at position {at})"
                )
            }
            PathError::Overlapping { index } => {
                write!(f, "paths overlap at access index {index}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// An order-preserving subsequence of the access pattern — the accesses
/// served by one address register per iteration.
///
/// # Examples
///
/// The paper's Section 2 observes that `(a_1, a_3, a_5, a_6)` is a path of
/// the example graph realizable with auto-increment/decrement only:
///
/// ```
/// use raco_graph::{DistanceModel, Path};
///
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let p = Path::new(vec![0, 2, 4, 5]).unwrap(); // a_1, a_3, a_5, a_6
/// assert_eq!(p.intra_cost(&dm), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    indices: Vec<usize>,
}

impl Path {
    /// Creates a path from strictly increasing access indices.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::Empty`] or [`PathError::NotIncreasing`] if the
    /// index list is empty or out of order.
    pub fn new(indices: Vec<usize>) -> Result<Self, PathError> {
        if indices.is_empty() {
            return Err(PathError::Empty);
        }
        for at in 1..indices.len() {
            if indices[at] <= indices[at - 1] {
                return Err(PathError::NotIncreasing { at });
            }
        }
        Ok(Path { indices })
    }

    /// Creates a path containing the single access `index`.
    pub fn singleton(index: usize) -> Self {
        Path {
            indices: vec![index],
        }
    }

    /// The access indices in pattern order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of accesses on the path.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Paths are never empty; this always returns `false` and exists for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// First access (the register's position at the top of an iteration).
    pub fn head(&self) -> usize {
        self.indices[0]
    }

    /// Last access (the register's position at the end of an iteration).
    pub fn tail(&self) -> usize {
        *self.indices.last().expect("paths are non-empty")
    }

    /// `true` if the path contains access `index`.
    pub fn contains(&self, index: usize) -> bool {
        self.indices.binary_search(&index).is_ok()
    }

    /// The paper's merge operation `P_i ⊕ P_j`: the union of both access
    /// sets, re-ordered by position in the original access pattern
    /// (Section 3.2: merging `(a_1, a_4, a_6)` and `(a_3, a_5)` yields
    /// `(a_1, a_3, a_4, a_5, a_6)`).
    ///
    /// # Errors
    ///
    /// Returns [`PathError::Overlapping`] if the paths share an access.
    pub fn merge(&self, other: &Path) -> Result<Path, PathError> {
        let mut merged = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (0, 0);
        while a < self.len() && b < other.len() {
            let (x, y) = (self.indices[a], other.indices[b]);
            if x == y {
                return Err(PathError::Overlapping { index: x });
            }
            if x < y {
                merged.push(x);
                a += 1;
            } else {
                merged.push(y);
                b += 1;
            }
        }
        merged.extend_from_slice(&self.indices[a..]);
        merged.extend_from_slice(&other.indices[b..]);
        Ok(Path { indices: merged })
    }

    /// Number of unit-cost updates *inside* the path: consecutive pairs
    /// whose intra-iteration distance exceeds `M`. This is the paper's
    /// `C(P)` in its literal form (Section 3.2).
    pub fn intra_cost(&self, dm: &DistanceModel) -> u32 {
        self.indices
            .windows(2)
            .filter(|w| !dm.free_intra(w[0], w[1]))
            .count() as u32
    }

    /// `1` if the back-edge step (tail of iteration `t` to head of
    /// iteration `t+1`) exceeds `M`, else `0`.
    pub fn wrap_cost(&self, dm: &DistanceModel) -> u32 {
        u32::from(!dm.free_wrap(self.tail(), self.head()))
    }

    /// Steady-state unit-cost updates per iteration for this path:
    /// [`intra_cost`](Self::intra_cost) plus, when `include_wrap` is set,
    /// [`wrap_cost`](Self::wrap_cost).
    ///
    /// `include_wrap = true` is the faithful steady-state model (the
    /// paper's Phase 1 requires the wrap step of every virtual register to
    /// be free, so merged-path costs are measured the same way);
    /// `include_wrap = false` is the paper-literal `C(P)`.
    pub fn cost(&self, dm: &DistanceModel, include_wrap: bool) -> u32 {
        self.intra_cost(dm) + if include_wrap { self.wrap_cost(dm) } else { 0 }
    }

    /// The post-modify deltas along the path within one iteration
    /// (`len() - 1` entries).
    pub fn intra_steps(&self, dm: &DistanceModel) -> Vec<i64> {
        self.indices
            .windows(2)
            .map(|w| dm.intra_distance(w[0], w[1]))
            .collect()
    }

    /// The back-edge post-modify delta (tail → head, next iteration).
    pub fn wrap_step(&self, dm: &DistanceModel) -> i64 {
        dm.wrap_distance(self.tail(), self.head())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (k, i) in self.indices.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            write!(f, "a_{}", i + 1)?;
        }
        f.write_str(")")
    }
}

/// Errors produced when constructing a [`PathCover`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoverError {
    /// An access appears on more than one path.
    Duplicated {
        /// The duplicated access index.
        index: usize,
    },
    /// An access appears on no path.
    Missing {
        /// The uncovered access index.
        index: usize,
    },
    /// A path references an access index `>= n`.
    OutOfRange {
        /// The out-of-range access index.
        index: usize,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::Duplicated { index } => {
                write!(f, "access {index} is covered by more than one path")
            }
            CoverError::Missing { index } => write!(f, "access {index} is not covered"),
            CoverError::OutOfRange { index } => {
                write!(f, "access index {index} is out of range")
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// A partition of all `n` accesses into node-disjoint paths.
///
/// Covers are kept in canonical order (paths sorted by head index), so two
/// covers with the same path set compare equal.
///
/// # Examples
///
/// ```
/// use raco_graph::{DistanceModel, Path, PathCover};
///
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let cover = PathCover::new(
///     vec![
///         Path::new(vec![0, 2, 4, 5]).unwrap(), // (a_1, a_3, a_5, a_6)
///         Path::new(vec![1, 3, 6]).unwrap(),    // (a_2, a_4, a_7)
///     ],
///     7,
/// )
/// .unwrap();
/// assert_eq!(cover.register_count(), 2);
/// assert_eq!(cover.total_cost(&dm, false), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCover {
    paths: Vec<Path>,
    n: usize,
}

impl PathCover {
    /// Creates a cover of `n` accesses, validating completeness and
    /// disjointness.
    ///
    /// # Errors
    ///
    /// Returns a [`CoverError`] if any access is missing, duplicated or
    /// out of range.
    pub fn new(paths: Vec<Path>, n: usize) -> Result<Self, CoverError> {
        let mut seen = vec![false; n];
        for p in &paths {
            for &i in p.indices() {
                if i >= n {
                    return Err(CoverError::OutOfRange { index: i });
                }
                if seen[i] {
                    return Err(CoverError::Duplicated { index: i });
                }
                seen[i] = true;
            }
        }
        if let Some(index) = seen.iter().position(|covered| !covered) {
            return Err(CoverError::Missing { index });
        }
        let mut cover = PathCover { paths, n };
        cover.canonicalize();
        Ok(cover)
    }

    /// The all-singletons cover: one register per access.
    pub fn singletons(n: usize) -> Self {
        PathCover {
            paths: (0..n).map(Path::singleton).collect(),
            n,
        }
    }

    /// The one-path cover: every access chained onto a single register.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn single_chain(n: usize) -> Self {
        assert!(n > 0, "a cover needs at least one access");
        PathCover {
            paths: vec![Path::new((0..n).collect()).expect("0..n is increasing")],
            n,
        }
    }

    fn canonicalize(&mut self) {
        self.paths.sort_by_key(Path::head);
    }

    /// The paths, sorted by head access.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of accesses covered.
    pub fn accesses(&self) -> usize {
        self.n
    }

    /// Number of paths — i.e. the number of address registers the cover
    /// uses.
    pub fn register_count(&self) -> usize {
        self.paths.len()
    }

    /// Total steady-state unit-cost updates per iteration, summed over all
    /// paths (see [`Path::cost`] for `include_wrap`).
    pub fn total_cost(&self, dm: &DistanceModel, include_wrap: bool) -> u32 {
        self.paths.iter().map(|p| p.cost(dm, include_wrap)).sum()
    }

    /// `true` if every step of every path — including every back-edge
    /// step — is free. Phase 1 of the paper computes the minimum cover
    /// with this property.
    pub fn is_zero_cost(&self, dm: &DistanceModel) -> bool {
        self.total_cost(dm, true) == 0
    }

    /// Replaces paths `i` and `j` by their merge `P_i ⊕ P_j`.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::Overlapping`] if the paths share an access
    /// (impossible for covers built through [`PathCover::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn merge_pair(&mut self, i: usize, j: usize) -> Result<(), PathError> {
        assert!(i != j, "cannot merge a path with itself");
        let merged = self.paths[i].merge(&self.paths[j])?;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.paths.swap_remove(hi);
        self.paths[lo] = merged;
        self.canonicalize();
        Ok(())
    }

    /// The path serving access `index`, if any.
    pub fn path_of(&self, index: usize) -> Option<&Path> {
        self.paths.iter().find(|p| p.contains(index))
    }
}

impl fmt::Display for PathCover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.paths.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_dm() -> DistanceModel {
        DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1)
    }

    #[test]
    fn path_construction_validates_order() {
        assert_eq!(Path::new(vec![]).unwrap_err(), PathError::Empty);
        assert_eq!(
            Path::new(vec![0, 2, 2]).unwrap_err(),
            PathError::NotIncreasing { at: 2 }
        );
        assert_eq!(
            Path::new(vec![3, 1]).unwrap_err(),
            PathError::NotIncreasing { at: 1 }
        );
        let p = Path::new(vec![0, 2, 5]).unwrap();
        assert_eq!((p.head(), p.tail(), p.len()), (0, 5, 3));
        assert!(p.contains(2));
        assert!(!p.contains(1));
    }

    #[test]
    fn merge_matches_paper_example() {
        // Section 3.2: (a_1, a_4, a_6) ⊕ (a_3, a_5) = (a_1, a_3, a_4, a_5, a_6)
        let p1 = Path::new(vec![0, 3, 5]).unwrap();
        let p2 = Path::new(vec![2, 4]).unwrap();
        let merged = p1.merge(&p2).unwrap();
        assert_eq!(merged.indices(), &[0, 2, 3, 4, 5]);
        // Merge is symmetric.
        assert_eq!(p2.merge(&p1).unwrap(), merged);
    }

    #[test]
    fn merge_rejects_overlap() {
        let p1 = Path::new(vec![0, 3]).unwrap();
        let p2 = Path::new(vec![3, 4]).unwrap();
        assert_eq!(
            p1.merge(&p2).unwrap_err(),
            PathError::Overlapping { index: 3 }
        );
    }

    #[test]
    fn paper_zero_cost_path() {
        let dm = paper_dm();
        // (a_1, a_3, a_5, a_6): offsets 1 → 2 → 1 → 0, all steps |d| <= 1.
        let p = Path::new(vec![0, 2, 4, 5]).unwrap();
        assert_eq!(p.intra_cost(&dm), 0);
        assert_eq!(p.intra_steps(&dm), vec![1, -1, -1]);
        // Wrap: offset 0 tail → offset 1 head next iteration: 1 + 1 - 0 = 2.
        assert_eq!(p.wrap_step(&dm), 2);
        assert_eq!(p.wrap_cost(&dm), 1);
        assert_eq!(p.cost(&dm, false), 0);
        assert_eq!(p.cost(&dm, true), 1);
    }

    #[test]
    fn singleton_wrap_cost_is_stride_freeness() {
        let dm = paper_dm();
        let p = Path::singleton(3);
        assert_eq!(p.intra_cost(&dm), 0);
        assert_eq!(p.wrap_step(&dm), 1);
        assert_eq!(p.wrap_cost(&dm), 0);
    }

    #[test]
    fn cover_validation() {
        let mk = |v: Vec<Vec<usize>>| {
            PathCover::new(v.into_iter().map(|x| Path::new(x).unwrap()).collect(), 4)
        };
        assert!(mk(vec![vec![0, 1], vec![2, 3]]).is_ok());
        assert_eq!(
            mk(vec![vec![0, 1], vec![1, 2], vec![3]]).unwrap_err(),
            CoverError::Duplicated { index: 1 }
        );
        assert_eq!(
            mk(vec![vec![0, 1], vec![3]]).unwrap_err(),
            CoverError::Missing { index: 2 }
        );
        assert_eq!(
            mk(vec![vec![0, 1], vec![2, 3, 7]]).unwrap_err(),
            CoverError::OutOfRange { index: 7 }
        );
    }

    #[test]
    fn covers_are_canonicalized() {
        let a = PathCover::new(
            vec![
                Path::new(vec![1, 3]).unwrap(),
                Path::new(vec![0, 2]).unwrap(),
            ],
            4,
        )
        .unwrap();
        let b = PathCover::new(
            vec![
                Path::new(vec![0, 2]).unwrap(),
                Path::new(vec![1, 3]).unwrap(),
            ],
            4,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.paths()[0].head(), 0);
    }

    #[test]
    fn singleton_and_chain_covers() {
        let s = PathCover::singletons(3);
        assert_eq!(s.register_count(), 3);
        assert_eq!(s.accesses(), 3);
        let c = PathCover::single_chain(3);
        assert_eq!(c.register_count(), 1);
        assert_eq!(c.paths()[0].indices(), &[0, 1, 2]);
    }

    #[test]
    fn merge_pair_reduces_register_count() {
        let mut cover = PathCover::singletons(4);
        cover.merge_pair(0, 2).unwrap();
        assert_eq!(cover.register_count(), 3);
        assert!(cover.path_of(0).unwrap().contains(2));
        assert_eq!(cover.path_of(3).unwrap().len(), 1);
    }

    #[test]
    fn total_cost_sums_paths() {
        let dm = paper_dm();
        // Chain everything: offsets 1,0,2,-1,1,0,-2 → steps -1,2,-3,2,-1,-2
        // → intra cost 4; wrap: 1 + 1 - (-2) = 4 → +1.
        let chain = PathCover::single_chain(7);
        assert_eq!(chain.total_cost(&dm, false), 4);
        assert_eq!(chain.total_cost(&dm, true), 5);
        assert!(!chain.is_zero_cost(&dm));
    }

    #[test]
    fn display_is_one_based_like_the_paper() {
        let p = Path::new(vec![0, 2, 4]).unwrap();
        assert_eq!(p.to_string(), "(a_1, a_3, a_5)");
        let cover = PathCover::new(
            vec![Path::new(vec![0]).unwrap(), Path::new(vec![1]).unwrap()],
            2,
        )
        .unwrap();
        assert_eq!(cover.to_string(), "{(a_1), (a_2)}");
    }

    #[test]
    #[should_panic(expected = "cannot merge a path with itself")]
    fn merge_pair_rejects_same_index() {
        let mut cover = PathCover::singletons(2);
        let _ = cover.merge_pair(1, 1);
    }
}
