//! Lower and upper bounds on the number of virtual registers `K̃`.
//!
//! Phase 1 of the paper sandwiches the exact branch-and-bound between a
//! matching-based lower bound (their ref \[2\]) and a fast heuristic upper
//! bound; when the two coincide the search is skipped entirely.

use crate::distance::DistanceModel;
use crate::matching;
use crate::path::{Path, PathCover};

/// Bounds on the minimum number of zero-cost paths (virtual registers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bounds {
    /// Matching lower bound (always sound).
    pub lower: usize,
    /// Heuristic zero-cost cover, if the heuristic found one. Its
    /// register count is an upper bound on `K̃`.
    pub upper: Option<PathCover>,
}

impl Bounds {
    /// The upper bound value, if a feasible cover was found.
    pub fn upper_value(&self) -> Option<usize> {
        self.upper.as_ref().map(PathCover::register_count)
    }

    /// `true` when lower and upper bound coincide, i.e. the heuristic
    /// cover is provably optimal.
    pub fn is_tight(&self) -> bool {
        self.upper_value() == Some(self.lower)
    }
}

/// Matching lower bound on `K̃`: the minimum path cover of the
/// intra-iteration graph ignoring wrap constraints
/// (see [`matching::min_path_cover_size`]).
pub fn lower_bound(dm: &DistanceModel) -> usize {
    matching::min_path_cover_size(dm)
}

/// Heuristic upper bound: take the matching cover (zero intra cost,
/// minimum path count) and *split-repair* every path whose wrap step is
/// not free.
///
/// Splitting a path into contiguous segments preserves the freeness of all
/// intra steps, so the only question is where to cut such that every
/// segment closes its own wrap; a quadratic DP finds the minimum number of
/// segments per path, or proves that no contiguous split works (in which
/// case `None` is returned and the exact search starts without an
/// incumbent).
///
/// # Examples
///
/// ```
/// use raco_graph::{bounds, DistanceModel};
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let cover = bounds::upper_bound_cover(&dm).expect("feasible");
/// assert!(cover.is_zero_cost(&dm));
/// ```
pub fn upper_bound_cover(dm: &DistanceModel) -> Option<PathCover> {
    let base = matching::min_path_cover(dm);
    let mut repaired: Vec<Path> = Vec::new();
    for path in base.paths() {
        repaired.extend(split_repair(path, dm)?);
    }
    Some(PathCover::new(repaired, dm.len()).expect("splits preserve the partition"))
}

/// Computes both bounds.
pub fn bounds(dm: &DistanceModel) -> Bounds {
    Bounds {
        lower: lower_bound(dm),
        upper: upper_bound_cover(dm),
    }
}

/// Splits `path` into the minimum number of contiguous segments such that
/// every segment's wrap step is free. Returns `None` if impossible.
fn split_repair(path: &Path, dm: &DistanceModel) -> Option<Vec<Path>> {
    let idx = path.indices();
    let len = idx.len();
    if path.wrap_cost(dm) == 0 {
        return Some(vec![path.clone()]);
    }
    // seg[i] = minimum segments covering idx[i..], usize::MAX = impossible.
    let mut seg = vec![usize::MAX; len + 1];
    let mut cut = vec![len; len + 1]; // cut[i] = end (exclusive) of the segment starting at i
    seg[len] = 0;
    for i in (0..len).rev() {
        for j in i..len {
            // Segment idx[i..=j]: head idx[i], tail idx[j].
            if dm.free_wrap(idx[j], idx[i]) && seg[j + 1] != usize::MAX {
                let candidate = 1 + seg[j + 1];
                if candidate < seg[i] {
                    seg[i] = candidate;
                    cut[i] = j + 1;
                }
            }
        }
    }
    if seg[0] == usize::MAX {
        return None;
    }
    let mut out = Vec::with_capacity(seg[0]);
    let mut i = 0;
    while i < len {
        let j = cut[i];
        out.push(Path::new(idx[i..j].to_vec()).expect("contiguous slice stays increasing"));
        i = j;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_bounds_are_tight_at_two() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let b = bounds(&dm);
        assert_eq!(b.lower, 2);
        // The heuristic must find some zero-cost cover; with luck it is
        // tight, but at minimum it must be feasible and >= lower.
        let cover = b.upper.expect("upper bound exists");
        assert!(cover.is_zero_cost(&dm));
        assert!(cover.register_count() >= b.lower);
    }

    #[test]
    fn monotone_run_is_one_register_and_tight() {
        // 0,1,2,3 with stride 1: chain is free and the wrap 0+1-3 = -2 is
        // not free, so the chain must split; stride 4 would close it.
        let dm = DistanceModel::from_offsets(&[0, 1, 2, 3], 4, 1);
        let b = bounds(&dm);
        assert_eq!(b.lower, 1);
        assert!(b.is_tight(), "wrap 0+4-3 = 1 is free: single register");
    }

    #[test]
    fn split_repair_splits_unclosable_chains() {
        // Chain 0,1,2,3 stride 1: wrap distance 0+1-3 = -2 unfree.
        // Split into (0,1),(2,3): wraps 0+1-1 = 0 and 2+1-3 = 0 → free.
        let dm = DistanceModel::from_offsets(&[0, 1, 2, 3], 1, 1);
        let cover = upper_bound_cover(&dm).expect("feasible");
        assert!(cover.is_zero_cost(&dm));
        assert_eq!(cover.register_count(), 2);
    }

    #[test]
    fn upper_bound_fails_when_no_singleton_can_close() {
        // Stride 5, M = 1: a singleton wrap is 5, and the only two
        // accesses are 10 apart, so nothing closes.
        let dm = DistanceModel::from_offsets(&[0, 10], 5, 1);
        assert_eq!(upper_bound_cover(&dm), None);
    }

    #[test]
    fn upper_bound_uses_nontrivial_wraps_when_stride_is_large() {
        // Stride 2, M = 1: singletons don't close (wrap = 2), but the
        // pair (0 → 1) closes: 0 + 2 - 1 = 1.
        let dm = DistanceModel::from_offsets(&[0, 1], 2, 1);
        let cover = upper_bound_cover(&dm).expect("pair closes");
        assert_eq!(cover.register_count(), 1);
        assert!(cover.is_zero_cost(&dm));
    }

    #[test]
    fn bounds_upper_value_and_tightness() {
        let dm = DistanceModel::from_offsets(&[0, 1, 2], 3, 1);
        let b = bounds(&dm);
        assert_eq!(b.lower, 1);
        assert_eq!(b.upper_value(), Some(1)); // wrap 0+3-2 = 1 free
        assert!(b.is_tight());
    }

    #[test]
    fn lower_bound_counts_isolated_nodes() {
        let dm = DistanceModel::from_offsets(&[0, 100, 200], 1, 1);
        assert_eq!(lower_bound(&dm), 3);
        let cover = upper_bound_cover(&dm).expect("singletons close with stride 1");
        assert_eq!(cover.register_count(), 3);
    }
}
