//! # raco-graph — the distance-graph model and path-cover algorithms
//!
//! This crate implements Section 2 and Section 3.1 of *"Register-
//! Constrained Address Computation in DSP Programs"* (Basu, Leupers,
//! Marwedel — DATE 1998):
//!
//! * [`DistanceModel`] — address distances between accesses of one
//!   [`AccessPattern`](raco_ir::AccessPattern), inside an iteration and
//!   across the loop back-edge, and the zero-/unit-cost classification
//!   induced by the AGU auto-modify range `M`;
//! * [`AccessGraph`] — the paper's graph `G = (V, E)` (Figure 1), with
//!   intra-iteration and inter-iteration zero-cost edges, exportable to
//!   Graphviz DOT;
//! * [`Path`] and [`PathCover`] — node-disjoint order-preserving paths,
//!   the object both phases of the paper's algorithm manipulate;
//! * [`matching`] — Hopcroft–Karp maximum bipartite matching, giving the
//!   polynomial minimum path cover when inter-iteration (wrap) constraints
//!   are relaxed; this is the paper's lower bound (their ref \[2\]);
//! * [`bounds`] — the matching lower bound and a split-repair heuristic
//!   upper bound on the number of virtual registers `K̃`;
//! * [`bb`] — the exact branch-and-bound minimum **zero-cost** cover
//!   (their ref \[3\]), i.e. the paper's Phase 1;
//! * [`brute`] — exhaustive oracles used by tests and ablation
//!   experiments;
//! * [`ModifyAllocation`] — frequency-ranked assignment of over-range
//!   deltas to modify registers, shared by the allocator's cost model
//!   (`raco-core`) and code generation (`raco-agu`) so both price the
//!   same machine.
//!
//! ## Example: Figure 1 of the paper
//!
//! ```
//! use raco_graph::AccessGraph;
//! use raco_ir::examples;
//!
//! let spec = examples::paper_loop();
//! let graph = AccessGraph::build(&spec.patterns()[0], 1);
//! // a_1 (offset 1) → a_3 (offset 2) is a zero-cost edge with M = 1 …
//! assert!(graph.has_intra_edge(0, 2));
//! // … while a_1 (offset 1) → a_4 (offset -1) is not (distance 2 > M).
//! assert!(!graph.has_intra_edge(0, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bb;
pub mod bounds;
pub mod brute;
mod distance;
mod graph;
pub mod matching;
mod modify;
mod path;

pub use bb::{BbOptions, BbResult, CoverSearchError};
pub use distance::DistanceModel;
pub use graph::AccessGraph;
pub use modify::ModifyAllocation;
pub use path::{CoverError, Path, PathCover, PathError};
