//! Exact minimum zero-cost path cover via branch-and-bound (Phase 1).
//!
//! Computing the minimum number of virtual registers `K̃` **with**
//! inter-iteration dependencies is "an exponential problem" (paper,
//! Section 3.1); the paper solves it with the fast branch-and-bound of
//! their ref \[3\] (Leupers, Basu, Marwedel — ASP-DAC 1998), sandwiched
//! between the matching lower bound and a heuristic upper bound.
//!
//! The search processes accesses in sequence order and, for each access,
//! either appends it to a compatible open path (free intra step from the
//! path's current tail) or opens a new path. A cover is feasible when
//! every path's wrap step (tail → head, next iteration) is free.
//!
//! Pruning:
//! * *incumbent*: a partial state with as many open paths as the best
//!   known cover can never improve;
//! * *closability*: a path whose wrap is currently not free and whose head
//!   cannot be wrap-reached by any remaining access is dead;
//! * *dominance memoization*: states are canonicalized to
//!   `(position, multiset of (head offset, tail offset))`; a revisit with
//!   an equal-or-worse path count is pruned;
//! * *symmetry*: appending to two open paths with identical
//!   `(head offset, tail offset)` is equivalent — only one branch is
//!   explored.

use std::collections::HashMap;
use std::fmt;

use crate::bounds;
use crate::distance::DistanceModel;
use crate::path::{Path, PathCover};

/// Tuning knobs for the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BbOptions {
    /// Maximum number of search nodes to expand before giving up. When the
    /// limit is hit the best cover found so far is returned with
    /// `optimal = false`.
    pub node_limit: u64,
    /// Enable dominance memoization (recommended; costs memory
    /// proportional to the number of distinct states).
    pub memoize: bool,
}

impl Default for BbOptions {
    fn default() -> Self {
        BbOptions {
            node_limit: 10_000_000,
            memoize: true,
        }
    }
}

/// Outcome of the branch-and-bound search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbResult {
    /// The best zero-cost cover found. Its register count is `K̃` when
    /// `optimal` is set.
    pub cover: PathCover,
    /// `true` if the search proved minimality (or the bounds were tight).
    pub optimal: bool,
    /// Search nodes expanded (0 when the bounds were tight).
    pub nodes: u64,
    /// The matching lower bound.
    pub lower_bound: usize,
    /// Register count of the heuristic upper-bound cover, if one existed.
    pub heuristic_upper_bound: Option<usize>,
}

impl BbResult {
    /// The number of virtual registers of the returned cover.
    pub fn virtual_registers(&self) -> usize {
        self.cover.register_count()
    }
}

/// Failure modes of the zero-cost cover search.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoverSearchError {
    /// No zero-cost cover exists at all — e.g. the effective stride
    /// exceeds `M` and some access can neither close its own wrap nor be
    /// chained into a path that does. Callers typically fall back to the
    /// relaxed matching cover (zero intra cost, paid wraps).
    NoZeroCostCover,
    /// The node limit was exhausted before *any* feasible cover was found
    /// (only possible when the heuristic upper bound also failed).
    SearchBudgetExhausted {
        /// Nodes expanded before giving up.
        nodes: u64,
    },
}

impl fmt::Display for CoverSearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverSearchError::NoZeroCostCover => {
                f.write_str("no zero-cost cover exists for this pattern")
            }
            CoverSearchError::SearchBudgetExhausted { nodes } => {
                write!(
                    f,
                    "search budget exhausted after {nodes} nodes without a feasible cover"
                )
            }
        }
    }
}

impl std::error::Error for CoverSearchError {}

/// Computes the minimum zero-cost cover (the paper's `K̃`) with default
/// options.
///
/// # Errors
///
/// See [`CoverSearchError`].
///
/// # Examples
///
/// The paper's running example needs three virtual registers once
/// inter-iteration dependencies are enforced (`a_7` can only close onto
/// itself):
///
/// ```
/// use raco_graph::{bb, DistanceModel};
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let result = bb::min_zero_cost_cover(&dm).expect("feasible");
/// assert_eq!(result.virtual_registers(), 3);
/// assert!(result.optimal);
/// ```
pub fn min_zero_cost_cover(dm: &DistanceModel) -> Result<BbResult, CoverSearchError> {
    min_zero_cost_cover_with(dm, BbOptions::default())
}

/// [`min_zero_cost_cover`] with explicit [`BbOptions`].
///
/// # Errors
///
/// See [`CoverSearchError`].
pub fn min_zero_cost_cover_with(
    dm: &DistanceModel,
    options: BbOptions,
) -> Result<BbResult, CoverSearchError> {
    let n = dm.len();
    let lb = bounds::lower_bound(dm);
    let heuristic = bounds::upper_bound_cover(dm);
    let heuristic_count = heuristic.as_ref().map(PathCover::register_count);

    if let Some(cover) = &heuristic {
        if cover.register_count() == lb {
            return Ok(BbResult {
                cover: cover.clone(),
                optimal: true,
                nodes: 0,
                lower_bound: lb,
                heuristic_upper_bound: heuristic_count,
            });
        }
    }

    let mut search = Search {
        dm,
        n,
        lb,
        best_count: heuristic_count.unwrap_or(usize::MAX),
        best_assign: heuristic.as_ref().map(cover_to_assignment),
        nodes: 0,
        node_limit: options.node_limit,
        memoize: options.memoize,
        memo: HashMap::new(),
        closable_later: closable_later_table(dm),
        aborted: false,
        proved: false,
    };
    let mut open: Vec<OpenPath> = Vec::new();
    let mut assign: Vec<usize> = vec![usize::MAX; n];
    search.dfs(0, &mut open, &mut assign, 0);

    match search.best_assign {
        Some(assignment) => {
            let cover = assignment_to_cover(&assignment, n);
            let optimal = !search.aborted || cover.register_count() == lb;
            Ok(BbResult {
                cover,
                optimal,
                nodes: search.nodes,
                lower_bound: lb,
                heuristic_upper_bound: heuristic_count,
            })
        }
        None => {
            if search.aborted {
                Err(CoverSearchError::SearchBudgetExhausted {
                    nodes: search.nodes,
                })
            } else {
                Err(CoverSearchError::NoZeroCostCover)
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenPath {
    head: usize,
    tail: usize,
    id: usize,
}

struct Search<'a> {
    dm: &'a DistanceModel,
    n: usize,
    lb: usize,
    best_count: usize,
    best_assign: Option<Vec<usize>>,
    nodes: u64,
    node_limit: u64,
    memoize: bool,
    memo: HashMap<(usize, Vec<(i64, i64)>), usize>,
    /// `closable_later[h][p]` — does any access `x >= p` close a wrap onto
    /// head `h` (`free_wrap(x, h)`)?
    closable_later: Vec<Vec<bool>>,
    aborted: bool,
    proved: bool,
}

/// Builds the suffix table used by the closability prune.
fn closable_later_table(dm: &DistanceModel) -> Vec<Vec<bool>> {
    let n = dm.len();
    (0..n)
        .map(|h| {
            let mut suffix = vec![false; n + 1];
            for p in (0..n).rev() {
                suffix[p] = suffix[p + 1] || dm.free_wrap(p, h);
            }
            suffix
        })
        .collect()
}

fn cover_to_assignment(cover: &PathCover) -> Vec<usize> {
    let mut assign = vec![usize::MAX; cover.accesses()];
    for (id, path) in cover.paths().iter().enumerate() {
        for &i in path.indices() {
            assign[i] = id;
        }
    }
    assign
}

fn assignment_to_cover(assign: &[usize], n: usize) -> PathCover {
    let count = assign.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); count];
    for (i, &id) in assign.iter().enumerate() {
        groups[id].push(i);
    }
    let paths = groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| Path::new(g).expect("grouped indices are increasing"))
        .collect();
    PathCover::new(paths, n).expect("assignment partitions accesses")
}

impl Search<'_> {
    fn dfs(&mut self, pos: usize, open: &mut Vec<OpenPath>, assign: &mut Vec<usize>, count: usize) {
        if self.aborted || self.proved {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.aborted = true;
            return;
        }
        if count >= self.best_count {
            return; // incumbent prune: count never decreases
        }
        if pos == self.n {
            if open.iter().all(|p| self.dm.free_wrap(p.tail, p.head)) {
                self.best_count = count;
                self.best_assign = Some(assign.clone());
                if count == self.lb {
                    self.proved = true;
                }
            }
            return;
        }
        // Closability prune: every open path must either already close or
        // still have a potential closing tail among the remaining accesses.
        for p in open.iter() {
            if !self.dm.free_wrap(p.tail, p.head) && !self.closable_later[p.head][pos] {
                return;
            }
        }
        // Dominance memoization.
        if self.memoize {
            let mut key: Vec<(i64, i64)> = open
                .iter()
                .map(|p| (self.dm.offset(p.head), self.dm.offset(p.tail)))
                .collect();
            key.sort_unstable();
            match self.memo.get_mut(&(pos, key.clone())) {
                Some(best_seen) if *best_seen <= count => return,
                Some(best_seen) => *best_seen = count,
                None => {
                    self.memo.insert((pos, key), count);
                }
            }
        }

        // Branch 1: append `pos` to a compatible open path (deduplicated
        // by (head offset, tail offset), nearest tail first).
        let mut candidates: Vec<usize> = Vec::new();
        let mut seen: Vec<(i64, i64)> = Vec::new();
        for (slot, p) in open.iter().enumerate() {
            if !self.dm.free_intra(p.tail, pos) {
                continue;
            }
            // After appending, the path must remain closable.
            if !self.dm.free_wrap(pos, p.head) && !self.closable_later[p.head][pos + 1] {
                continue;
            }
            let sig = (self.dm.offset(p.head), self.dm.offset(p.tail));
            if seen.contains(&sig) {
                continue; // symmetric branch
            }
            seen.push(sig);
            candidates.push(slot);
        }
        candidates.sort_by_key(|&slot| self.dm.intra_distance(open[slot].tail, pos).unsigned_abs());
        for slot in candidates {
            let saved_tail = open[slot].tail;
            let id = open[slot].id;
            open[slot].tail = pos;
            assign[pos] = id;
            self.dfs(pos + 1, open, assign, count);
            open[slot].tail = saved_tail;
            assign[pos] = usize::MAX;
            if self.aborted || self.proved {
                return;
            }
        }

        // Branch 2: open a new path at `pos` (if a fresh singleton can
        // still close eventually).
        if count + 1 < self.best_count
            && (self.dm.free_wrap(pos, pos) || self.closable_later[pos][pos + 1])
        {
            open.push(OpenPath {
                head: pos,
                tail: pos,
                id: count,
            });
            assign[pos] = count;
            self.dfs(pos + 1, open, assign, count + 1);
            open.pop();
            assign[pos] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    #[test]
    fn paper_example_has_three_virtual_registers() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let r = min_zero_cost_cover(&dm).expect("feasible");
        assert_eq!(r.virtual_registers(), 3);
        assert!(r.optimal);
        assert!(r.cover.is_zero_cost(&dm));
        assert_eq!(r.lower_bound, 2);
        // a_7 must be a singleton: nothing else closes onto offset -2.
        let a7 = r.cover.path_of(6).unwrap();
        assert_eq!(a7.len(), 1);
    }

    #[test]
    fn monotone_pattern_closes_with_matching_stride() {
        let dm = DistanceModel::from_offsets(&[0, 1, 2, 3], 4, 1);
        let r = min_zero_cost_cover(&dm).expect("feasible");
        assert_eq!(r.virtual_registers(), 1);
        assert!(r.optimal);
        assert_eq!(r.nodes, 0, "tight bounds skip the search");
    }

    #[test]
    fn infeasible_pattern_reports_no_cover() {
        let dm = DistanceModel::from_offsets(&[0, 10], 5, 1);
        assert_eq!(
            min_zero_cost_cover(&dm).unwrap_err(),
            CoverSearchError::NoZeroCostCover
        );
    }

    #[test]
    fn zero_node_limit_without_heuristic_exhausts() {
        // Heuristic upper bound fails here (see bounds tests), and a zero
        // node budget stops the search immediately.
        let dm = DistanceModel::from_offsets(&[0, 10], 5, 1);
        let err = min_zero_cost_cover_with(
            &dm,
            BbOptions {
                node_limit: 0,
                memoize: true,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoverSearchError::SearchBudgetExhausted { .. }
        ));
    }

    #[test]
    fn node_limit_with_heuristic_returns_heuristic_cover() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let r = min_zero_cost_cover_with(
            &dm,
            BbOptions {
                node_limit: 0,
                memoize: true,
            },
        )
        .expect("heuristic incumbent exists");
        assert!(r.cover.is_zero_cost(&dm));
    }

    #[test]
    fn memoization_does_not_change_results() {
        for offsets in [
            vec![1, 0, 2, -1, 1, 0, -2],
            vec![0, 2, 4, 1, 3, 5],
            vec![5, 5, 5, 5],
            vec![0, -1, -2, -3, 7],
        ] {
            let dm = DistanceModel::from_offsets(&offsets, 1, 1);
            let with = min_zero_cost_cover_with(
                &dm,
                BbOptions {
                    memoize: true,
                    ..BbOptions::default()
                },
            );
            let without = min_zero_cost_cover_with(
                &dm,
                BbOptions {
                    memoize: false,
                    ..BbOptions::default()
                },
            );
            match (with, without) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.virtual_registers(), b.virtual_registers(), "{offsets:?}")
                }
                (a, b) => panic!("inconsistent feasibility: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_small_patterns() {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for _ in 0..60 {
            let n = 1 + (next().unsigned_abs() as usize % 7);
            let m = (next().unsigned_abs() % 2) as u32 + 1;
            let stride = [1i64, 1, 2, -1][(next().unsigned_abs() % 4) as usize];
            let offsets: Vec<i64> = (0..n).map(|_| next().rem_euclid(9) - 4).collect();
            let dm = DistanceModel::from_offsets(&offsets, stride, m);
            let brute = brute::min_zero_cost_cover_brute(&dm);
            let bb = min_zero_cost_cover(&dm);
            match (brute, bb) {
                (Some(bc), Ok(r)) => assert_eq!(
                    r.virtual_registers(),
                    bc.register_count(),
                    "offsets {offsets:?} stride {stride} m {m}"
                ),
                (None, Err(CoverSearchError::NoZeroCostCover)) => {}
                (b, r) => panic!("feasibility mismatch for {offsets:?}: {b:?} vs {r:?}"),
            }
        }
    }

    #[test]
    fn repeated_offsets_collapse_into_one_register() {
        let dm = DistanceModel::from_offsets(&[3, 3, 3, 3, 3], 1, 1);
        let r = min_zero_cost_cover(&dm).expect("feasible");
        assert_eq!(r.virtual_registers(), 1);
    }

    #[test]
    fn single_access_patterns() {
        let dm = DistanceModel::from_offsets(&[7], 1, 1);
        let r = min_zero_cost_cover(&dm).expect("feasible");
        assert_eq!(r.virtual_registers(), 1);
        let dm = DistanceModel::from_offsets(&[7], 9, 1);
        assert_eq!(
            min_zero_cost_cover(&dm).unwrap_err(),
            CoverSearchError::NoZeroCostCover
        );
    }
}
