//! Exhaustive oracles for small instances.
//!
//! These enumerate *all* partitions of the access sequence into paths
//! (set partitions in restricted-growth-string form) and are used to
//! validate the branch-and-bound (Phase 1) and the merging heuristics
//! (Phase 2) on small patterns in tests and ablation experiments.
//!
//! Complexity is the Bell number `B(n)` — keep `n <= 12`.

use crate::distance::DistanceModel;
use crate::path::{Path, PathCover};

/// Calls `f(assignment, block_count)` for every partition of `0..n` into
/// at most `max_blocks` non-empty blocks.
///
/// `assignment[i]` is the block id of element `i`; ids form a restricted
/// growth string (block ids appear in first-use order), so every set
/// partition is visited exactly once.
///
/// # Examples
///
/// ```
/// let mut count = 0;
/// raco_graph::brute::for_each_partition(4, 4, |_, _| count += 1);
/// assert_eq!(count, 15); // Bell(4)
/// ```
pub fn for_each_partition(n: usize, max_blocks: usize, mut f: impl FnMut(&[usize], usize)) {
    if n == 0 || max_blocks == 0 {
        return;
    }
    let mut assignment = vec![0usize; n];
    recurse(&mut assignment, 1, 1, max_blocks, &mut f);
}

fn recurse(
    assignment: &mut Vec<usize>,
    pos: usize,
    used: usize,
    max_blocks: usize,
    f: &mut impl FnMut(&[usize], usize),
) {
    let n = assignment.len();
    if pos == n {
        f(assignment, used);
        return;
    }
    for b in 0..used.min(max_blocks) {
        assignment[pos] = b;
        recurse(assignment, pos + 1, used, max_blocks, f);
    }
    if used < max_blocks {
        assignment[pos] = used;
        recurse(assignment, pos + 1, used + 1, max_blocks, f);
        assignment[pos] = 0;
    }
}

fn assignment_to_cover(assignment: &[usize], blocks: usize) -> PathCover {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); blocks];
    for (i, &b) in assignment.iter().enumerate() {
        groups[b].push(i);
    }
    let paths = groups
        .into_iter()
        .map(|g| Path::new(g).expect("restricted growth keeps blocks increasing and non-empty"))
        .collect();
    PathCover::new(paths, assignment.len()).expect("partition covers all accesses")
}

/// Exhaustive minimum zero-cost cover: the true `K̃`, or `None` if no
/// zero-cost cover exists.
///
/// # Panics
///
/// Panics if `dm.len() > 12` (the enumeration would be astronomically
/// large).
pub fn min_zero_cost_cover_brute(dm: &DistanceModel) -> Option<PathCover> {
    let n = dm.len();
    assert!(n <= 12, "brute-force oracle limited to n <= 12");
    let mut best: Option<PathCover> = None;
    for_each_partition(n, n, |assignment, blocks| {
        if let Some(b) = &best {
            if blocks >= b.register_count() {
                return;
            }
        }
        let cover = assignment_to_cover(assignment, blocks);
        if cover.is_zero_cost(dm) {
            best = Some(cover);
        }
    });
    best
}

/// Exhaustive minimum-cost allocation to at most `k` registers: the true
/// optimum of the paper's overall problem, used as the quality oracle for
/// the two-phase heuristic.
///
/// Returns `(cost, cover)` minimizing the steady-state unit-cost updates
/// per iteration (`include_wrap` selects the cost model, see
/// [`Path::cost`]).
///
/// # Panics
///
/// Panics if `dm.len() > 12` or `k == 0`.
pub fn min_cost_allocation_brute(
    dm: &DistanceModel,
    k: usize,
    include_wrap: bool,
) -> (u32, PathCover) {
    let n = dm.len();
    assert!(n <= 12, "brute-force oracle limited to n <= 12");
    assert!(k > 0, "need at least one register");
    let mut best: Option<(u32, PathCover)> = None;
    for_each_partition(n, k, |assignment, blocks| {
        let cover = assignment_to_cover(assignment, blocks);
        let cost = cover.total_cost(dm, include_wrap);
        let better = match &best {
            None => true,
            Some((c, _)) => cost < *c,
        };
        if better {
            best = Some((cost, cover));
        }
    });
    best.expect("at least one partition exists for n >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_counts_are_bell_numbers() {
        let bell = [1usize, 1, 2, 5, 15, 52, 203];
        for (n, &b) in bell.iter().enumerate().skip(1) {
            let mut count = 0;
            for_each_partition(n, n, |_, _| count += 1);
            assert_eq!(count, b, "Bell({n})");
        }
    }

    #[test]
    fn partition_block_limit_is_respected() {
        let mut max_seen = 0;
        for_each_partition(5, 2, |_, blocks| max_seen = max_seen.max(blocks));
        assert_eq!(max_seen, 2);
        // Stirling numbers: S(5,1) + S(5,2) = 1 + 15 = 16 partitions.
        let mut count = 0;
        for_each_partition(5, 2, |_, _| count += 1);
        assert_eq!(count, 16);
    }

    #[test]
    fn degenerate_inputs_visit_nothing() {
        let mut count = 0;
        for_each_partition(0, 3, |_, _| count += 1);
        for_each_partition(3, 0, |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn brute_zero_cost_on_paper_example() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let cover = min_zero_cost_cover_brute(&dm).expect("feasible");
        assert_eq!(cover.register_count(), 3);
        assert!(cover.is_zero_cost(&dm));
    }

    #[test]
    fn brute_detects_infeasibility() {
        let dm = DistanceModel::from_offsets(&[0, 10], 5, 1);
        assert_eq!(min_zero_cost_cover_brute(&dm), None);
    }

    #[test]
    fn brute_min_cost_with_one_register_is_the_chain_cost() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let (cost, cover) = min_cost_allocation_brute(&dm, 1, true);
        assert_eq!(cover.register_count(), 1);
        // The only 1-block partition is the full chain: intra 4 + wrap 1.
        assert_eq!(cost, 5);
    }

    #[test]
    fn brute_min_cost_zero_when_k_reaches_k_tilde() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let (cost3, _) = min_cost_allocation_brute(&dm, 3, true);
        assert_eq!(cost3, 0);
        let (cost2, _) = min_cost_allocation_brute(&dm, 2, true);
        assert!(cost2 >= 1, "below K̃ at least one unit cost is unavoidable");
    }

    #[test]
    fn brute_cost_is_monotone_in_k() {
        let dm = DistanceModel::from_offsets(&[0, 3, 1, 4, 2, 5], 1, 1);
        let mut last = u32::MAX;
        for k in 1..=6 {
            let (cost, cover) = min_cost_allocation_brute(&dm, k, true);
            assert!(cost <= last, "cost must not increase with more registers");
            assert!(cover.register_count() <= k);
            last = cost;
        }
    }
}
