//! Maximum bipartite matching and the relaxed minimum path cover.
//!
//! When inter-iteration (wrap) constraints are ignored, the minimum number
//! of node-disjoint paths covering the intra-iteration graph is the
//! classic *minimum path cover of a DAG*: `N - |maximum matching|` in the
//! bipartite graph that has a left copy and a right copy of every access
//! and an edge `(i, j)` for every zero-cost step `i → j`. The paper uses
//! this quantity as the lower bound on the number of virtual registers
//! `K̃` (their ref \[2\], Araujo et al., ISSS 1996).
//!
//! The matching is computed with Hopcroft–Karp in
//! `O(E sqrt(V))`.

use crate::distance::DistanceModel;
use crate::path::{Path, PathCover};

/// A maximum matching between left and right vertex copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    pair_left: Vec<Option<usize>>,
    pair_right: Vec<Option<usize>>,
    size: usize,
}

impl Matching {
    /// The right partner matched to left vertex `i`, if any.
    pub fn partner_of_left(&self, i: usize) -> Option<usize> {
        self.pair_left.get(i).copied().flatten()
    }

    /// The left partner matched to right vertex `j`, if any.
    pub fn partner_of_right(&self, j: usize) -> Option<usize> {
        self.pair_right.get(j).copied().flatten()
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// Computes a maximum bipartite matching with Hopcroft–Karp.
///
/// `adjacency[i]` lists the right vertices reachable from left vertex `i`.
/// Runs in `O(E sqrt(V))`.
///
/// # Examples
///
/// ```
/// use raco_graph::matching::hopcroft_karp;
/// // Perfect matching on a 2x2 biclique:
/// let m = hopcroft_karp(2, 2, &[vec![0, 1], vec![0, 1]]);
/// assert_eq!(m.size(), 2);
/// ```
pub fn hopcroft_karp(n_left: usize, n_right: usize, adjacency: &[Vec<usize>]) -> Matching {
    assert_eq!(
        adjacency.len(),
        n_left,
        "adjacency list must have one entry per left vertex"
    );
    const INF: u32 = u32::MAX;
    let mut pair_left: Vec<Option<usize>> = vec![None; n_left];
    let mut pair_right: Vec<Option<usize>> = vec![None; n_right];
    let mut dist: Vec<u32> = vec![INF; n_left];
    let mut queue: Vec<usize> = Vec::with_capacity(n_left);
    let mut size = 0usize;

    loop {
        // BFS phase: layer the graph from unmatched left vertices.
        queue.clear();
        for u in 0..n_left {
            if pair_left[u].is_none() {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found_augmenting_layer = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adjacency[u] {
                match pair_right[v] {
                    None => found_augmenting_layer = true,
                    Some(u2) => {
                        if dist[u2] == INF {
                            dist[u2] = dist[u] + 1;
                            queue.push(u2);
                        }
                    }
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths.
        fn dfs(
            u: usize,
            adjacency: &[Vec<usize>],
            pair_left: &mut [Option<usize>],
            pair_right: &mut [Option<usize>],
            dist: &mut [u32],
        ) -> bool {
            for idx in 0..adjacency[u].len() {
                let v = adjacency[u][idx];
                let ok = match pair_right[v] {
                    None => true,
                    Some(u2) => {
                        dist[u2] == dist[u].saturating_add(1)
                            && dfs(u2, adjacency, pair_left, pair_right, dist)
                    }
                };
                if ok {
                    pair_left[u] = Some(v);
                    pair_right[v] = Some(u);
                    return true;
                }
            }
            dist[u] = u32::MAX;
            false
        }
        for u in 0..n_left {
            if pair_left[u].is_none()
                && dfs(u, adjacency, &mut pair_left, &mut pair_right, &mut dist)
            {
                size += 1;
            }
        }
    }
    Matching {
        pair_left,
        pair_right,
        size,
    }
}

/// The bipartite adjacency of the intra-iteration zero-cost relation:
/// left vertex `i` connects to right vertex `j` iff `i < j` and the step
/// `i → j` is free.
pub fn intra_adjacency(dm: &DistanceModel) -> Vec<Vec<usize>> {
    let n = dm.len();
    (0..n)
        .map(|i| ((i + 1)..n).filter(|&j| dm.free_intra(i, j)).collect())
        .collect()
}

/// Size of the minimum path cover of the intra-iteration graph (wrap
/// constraints ignored): `N - |maximum matching|`.
///
/// This is a **lower bound** on the paper's `K̃`, because every zero-cost
/// cover (which additionally closes every wrap) is in particular a path
/// cover of the intra-iteration graph.
pub fn min_path_cover_size(dm: &DistanceModel) -> usize {
    let m = hopcroft_karp(dm.len(), dm.len(), &intra_adjacency(dm));
    dm.len() - m.size()
}

/// An explicit minimum path cover of the intra-iteration graph (wrap
/// constraints ignored), extracted from a maximum matching.
///
/// Every intra step of every returned path is free; back-edge (wrap) steps
/// may not be.
///
/// # Examples
///
/// ```
/// use raco_graph::{matching, DistanceModel};
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let cover = matching::min_path_cover(&dm);
/// assert_eq!(cover.register_count(), 2);
/// assert_eq!(cover.total_cost(&dm, false), 0);
/// ```
pub fn min_path_cover(dm: &DistanceModel) -> PathCover {
    let n = dm.len();
    let m = hopcroft_karp(n, n, &intra_adjacency(dm));
    let mut paths = Vec::new();
    for head in 0..n {
        if m.partner_of_right(head).is_some() {
            continue; // not a chain head: something precedes it
        }
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(next) = m.partner_of_left(cur) {
            chain.push(next);
            cur = next;
        }
        paths.push(Path::new(chain).expect("chains are strictly increasing"));
    }
    PathCover::new(paths, n).expect("matching chains partition the nodes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopcroft_karp_on_small_graphs() {
        // Empty graph.
        let m = hopcroft_karp(3, 3, &[vec![], vec![], vec![]]);
        assert_eq!(m.size(), 0);
        // A path graph needs alternating choices.
        let m = hopcroft_karp(3, 3, &[vec![0], vec![0, 1], vec![1]]);
        assert_eq!(m.size(), 2);
        // Perfect matching exists (uniquely 0→1, 1→2, 2→0).
        let m = hopcroft_karp(3, 3, &[vec![0, 1], vec![1, 2], vec![0]]);
        assert_eq!(m.size(), 3);
        for left in 0..3 {
            let right = m.partner_of_left(left).expect("perfect matching");
            assert_eq!(m.partner_of_right(right), Some(left));
        }
        assert_eq!(m.partner_of_left(2), Some(0));
    }

    #[test]
    fn hopcroft_karp_handles_asymmetric_sides() {
        let m = hopcroft_karp(2, 4, &[vec![3], vec![3]]);
        assert_eq!(m.size(), 1);
        let m = hopcroft_karp(4, 1, &[vec![0], vec![0], vec![0], vec![0]]);
        assert_eq!(m.size(), 1);
    }

    #[test]
    #[should_panic(expected = "one entry per left vertex")]
    fn hopcroft_karp_validates_adjacency_len() {
        let _ = hopcroft_karp(2, 2, &[vec![0]]);
    }

    #[test]
    fn paper_example_needs_two_registers_without_wrap() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        assert_eq!(min_path_cover_size(&dm), 2);
        let cover = min_path_cover(&dm);
        assert_eq!(cover.register_count(), 2);
        assert!(cover.total_cost(&dm, false) == 0);
    }

    #[test]
    fn disconnected_pattern_needs_one_register_per_access() {
        let dm = DistanceModel::from_offsets(&[0, 10, 20, 30], 1, 1);
        assert_eq!(min_path_cover_size(&dm), 4);
        let cover = min_path_cover(&dm);
        assert_eq!(cover.register_count(), 4);
        assert!(cover.paths().iter().all(|p| p.len() == 1));
    }

    #[test]
    fn monotone_pattern_needs_one_register() {
        let dm = DistanceModel::from_offsets(&[0, 1, 2, 3, 4], 1, 1);
        assert_eq!(min_path_cover_size(&dm), 1);
        let cover = min_path_cover(&dm);
        assert_eq!(cover.paths()[0].indices(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn cover_is_consistent_with_cover_size_on_random_patterns() {
        // Deterministic pseudo-random patterns (LCG) — no rand dependency.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for n in [1usize, 2, 5, 9, 14] {
            for m in [0u32, 1, 2] {
                let offsets: Vec<i64> = (0..n).map(|_| next().rem_euclid(7) - 3).collect();
                let dm = DistanceModel::from_offsets(&offsets, 1, m);
                let cover = min_path_cover(&dm);
                assert_eq!(cover.register_count(), min_path_cover_size(&dm));
                assert_eq!(cover.total_cost(&dm, false), 0, "offsets {offsets:?} m {m}");
            }
        }
    }
}
