//! Address distances and the zero-/unit-cost classification.

use raco_ir::{AccessPattern, UpdateRange};

/// Distances between the accesses of one pattern under an auto-modify
/// range `M`.
///
/// Two accesses `a_i`, `a_j` of the same array have *intra-iteration
/// distance* `offset(j) - offset(i)` — the post-modify an address register
/// needs after serving `a_i` so that it points at `a_j` in the **same**
/// iteration. Across the loop back-edge the register additionally travels
/// the pattern's effective stride: the *wrap distance* from `a_i` (last
/// access served in iteration `t`) to `a_j` (first access served in
/// iteration `t+1`) is `offset(j) + stride - offset(i)`.
///
/// A distance `d` is **free** (zero-cost) iff it falls inside the
/// machine's free [`UpdateRange`] — the paper's Section 2 model uses the
/// symmetric window `|d| <= M`; generalized machines may free an
/// asymmetric window (e.g. `[0, 1]` on MAC post-increment AGUs).
/// Any other update costs one extra instruction (unit cost).
///
/// # Examples
///
/// ```
/// use raco_graph::DistanceModel;
/// use raco_ir::AccessPattern;
///
/// let pattern = AccessPattern::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1);
/// let dm = DistanceModel::new(&pattern, 1);
/// assert_eq!(dm.intra_distance(0, 2), 1);   // A[i+1] → A[i+2]
/// assert!(dm.free_intra(0, 2));
/// assert_eq!(dm.wrap_distance(2, 0), 0);    // A[i+2] → A[(i+1)+1]
/// assert!(dm.free_wrap(2, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceModel {
    offsets: Vec<i64>,
    stride: i64,
    range: UpdateRange,
}

impl DistanceModel {
    /// Builds the distance model of `pattern` under the symmetric
    /// auto-modify range `modify_range` (the paper's `M`).
    pub fn new(pattern: &AccessPattern, modify_range: u32) -> Self {
        Self::with_range(pattern, UpdateRange::symmetric(modify_range))
    }

    /// Builds the distance model of `pattern` under an arbitrary free
    /// update window.
    pub fn with_range(pattern: &AccessPattern, range: UpdateRange) -> Self {
        DistanceModel {
            offsets: pattern.offsets(),
            stride: pattern.stride(),
            range,
        }
    }

    /// Builds a model from raw offsets under a symmetric range, for
    /// algorithm-only use.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty.
    pub fn from_offsets(offsets: &[i64], stride: i64, modify_range: u32) -> Self {
        Self::from_offsets_range(offsets, stride, UpdateRange::symmetric(modify_range))
    }

    /// Builds a model from raw offsets under an arbitrary free update
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty.
    pub fn from_offsets_range(offsets: &[i64], stride: i64, range: UpdateRange) -> Self {
        assert!(!offsets.is_empty(), "a distance model needs accesses");
        DistanceModel {
            offsets: offsets.to_vec(),
            stride,
            range,
        }
    }

    /// Number of accesses (the paper's `N`).
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` if the model covers no accesses (never the case for models
    /// built through the public constructors).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The access offsets in sequence order.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Offset of access `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn offset(&self, i: usize) -> i64 {
        self.offsets[i]
    }

    /// Effective per-iteration address stride.
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// Symmetric auto-modify summary `M` (the largest `M` with `[-M, M]`
    /// inside the window; exact on paper-shaped machines).
    pub fn modify_range(&self) -> u32 {
        self.range.symmetric_radius()
    }

    /// The exact free update window.
    pub fn range(&self) -> UpdateRange {
        self.range
    }

    /// `true` iff a post-modify by `d` is free (inside the window).
    pub fn is_free(&self, d: i64) -> bool {
        self.range.contains(d)
    }

    /// Post-modify needed to go from access `from` to access `to` within
    /// one iteration.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn intra_distance(&self, from: usize, to: usize) -> i64 {
        // Offsets come from i64 arithmetic on source constants; their
        // difference is computed in i128 to avoid overflow on adversarial
        // inputs, then clamped (a clamped distance is never free anyway).
        clamp_i128(i128::from(self.offsets[to]) - i128::from(self.offsets[from]))
    }

    /// Post-modify needed to go from access `from` in iteration `t` to
    /// access `to` in iteration `t + 1`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn wrap_distance(&self, from: usize, to: usize) -> i64 {
        clamp_i128(
            i128::from(self.offsets[to]) + i128::from(self.stride) - i128::from(self.offsets[from]),
        )
    }

    /// `true` iff `from → to` (same iteration, `from` before `to`) is a
    /// zero-cost step. This is the edge relation of the paper's graph `G`.
    pub fn free_intra(&self, from: usize, to: usize) -> bool {
        self.is_free(self.intra_distance(from, to))
    }

    /// `true` iff the back-edge step from `from` (tail, iteration `t`) to
    /// `to` (head, iteration `t+1`) is zero-cost.
    pub fn free_wrap(&self, from: usize, to: usize) -> bool {
        self.is_free(self.wrap_distance(from, to))
    }

    /// `true` iff a register serving only access `i` needs no explicit
    /// update (its wrap distance is the stride itself).
    pub fn singleton_is_free(&self) -> bool {
        self.is_free(self.stride)
    }
}

fn clamp_i128(v: i128) -> i64 {
    v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> DistanceModel {
        DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1)
    }

    #[test]
    fn intra_distances_match_offset_differences() {
        let dm = paper_model();
        assert_eq!(dm.intra_distance(0, 1), -1);
        assert_eq!(dm.intra_distance(1, 2), 2);
        assert_eq!(dm.intra_distance(3, 6), -1);
        assert_eq!(dm.intra_distance(2, 2), 0);
    }

    #[test]
    fn wrap_distances_add_the_stride() {
        let dm = paper_model();
        // a_7 (offset -2) → a_1 (offset 1) next iteration: 1 + 1 - (-2) = 4
        assert_eq!(dm.wrap_distance(6, 0), 4);
        // a_3 (offset 2) → a_1 (offset 1) next iteration: 1 + 1 - 2 = 0
        assert_eq!(dm.wrap_distance(2, 0), 0);
    }

    #[test]
    fn freeness_respects_m() {
        let dm = paper_model();
        assert!(dm.free_intra(0, 1)); // distance -1
        assert!(!dm.free_intra(1, 2)); // distance 2
        assert!(dm.free_wrap(2, 0)); // distance 0
        assert!(!dm.free_wrap(6, 0)); // distance 4

        let dm2 = DistanceModel::from_offsets(&[1, 0, 2], 1, 2);
        assert!(dm2.free_intra(1, 2)); // distance 2 <= M = 2
    }

    #[test]
    fn singleton_freeness_tracks_stride() {
        assert!(DistanceModel::from_offsets(&[0], 1, 1).singleton_is_free());
        assert!(!DistanceModel::from_offsets(&[0], 3, 1).singleton_is_free());
        assert!(DistanceModel::from_offsets(&[0], -1, 1).singleton_is_free());
    }

    #[test]
    fn negative_strides_shift_wrap_distances() {
        let dm = DistanceModel::from_offsets(&[0, 1], -1, 1);
        // tail 1 (offset 1) → head 0 (offset 0): 0 - 1 - 1 = -2
        assert_eq!(dm.wrap_distance(1, 0), -2);
        assert!(!dm.free_wrap(1, 0));
        // tail 1 → head 1: -1 → free
        assert!(dm.free_wrap(1, 1));
    }

    #[test]
    fn from_pattern_matches_from_offsets() {
        let pattern = raco_ir::AccessPattern::from_offsets(&[3, 1, 4], 2);
        let a = DistanceModel::new(&pattern, 1);
        let b = DistanceModel::from_offsets(&[3, 1, 4], 2, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.offset(2), 4);
        assert_eq!(a.offsets(), &[3, 1, 4]);
        assert_eq!(a.stride(), 2);
        assert_eq!(a.modify_range(), 1);
    }

    #[test]
    fn extreme_offsets_do_not_overflow() {
        let dm = DistanceModel::from_offsets(&[i64::MIN, i64::MAX], i64::MAX, u32::MAX);
        assert_eq!(dm.intra_distance(0, 1), i64::MAX); // clamped
        assert!(!dm.free_intra(0, 1));
        assert_eq!(dm.wrap_distance(0, 1), i64::MAX); // clamped
        assert_eq!(dm.intra_distance(1, 0), i64::MIN); // clamped
    }

    #[test]
    #[should_panic(expected = "needs accesses")]
    fn empty_offsets_are_rejected() {
        let _ = DistanceModel::from_offsets(&[], 1, 1);
    }

    #[test]
    fn asymmetric_ranges_free_one_direction_only() {
        // MAC-style [0, 1]: +1 is free, -1 is not.
        let range = UpdateRange::new(0, 1).unwrap();
        let dm = DistanceModel::from_offsets_range(&[0, 1, 0], 1, range);
        assert!(dm.free_intra(0, 1)); // +1
        assert!(!dm.free_intra(1, 2)); // -1
        assert!(dm.is_free(0) && dm.is_free(1));
        assert!(!dm.is_free(-1));
        assert_eq!(dm.range(), range);
        assert_eq!(dm.modify_range(), 0, "summary radius of [0,1] is 0");
        // The symmetric constructors agree with the range constructors.
        let pattern = raco_ir::AccessPattern::from_offsets(&[0, 1, 0], 1);
        assert_eq!(
            DistanceModel::with_range(&pattern, UpdateRange::symmetric(2)),
            DistanceModel::new(&pattern, 2),
        );
    }
}
