//! Modify-register allocation.
//!
//! Machines like the Motorola DSP56k or ADSP-210x add *modify registers*:
//! an address register can be post-updated by the content of a modify
//! register for free, regardless of the auto-modify range. Which values to
//! keep in the (few) modify registers is itself an allocation problem; the
//! classic heuristic (in the spirit of the paper's ref \[2\]) loads the most
//! *frequent* over-range deltas of the steady-state iteration.
//!
//! This lives in `raco-graph` — next to [`Path`](crate::Path) and
//! [`PathCover`] — because *both* ends of the stack consume it: the
//! allocator's cost model (`raco_core::CostModel`) prices a delta at zero
//! cycles when a modify register can hold it, and code generation
//! (`raco_agu::codegen`) loads exactly the same values into the machine's
//! modify registers. One shared ranking is what makes the allocator's
//! predicted cost equal the simulator's measured cost on MR-equipped
//! machines.

use std::collections::HashMap;

use crate::distance::DistanceModel;
use crate::path::PathCover;

/// Values assigned to modify registers.
///
/// # Examples
///
/// ```
/// use raco_graph::{DistanceModel, ModifyAllocation, PathCover};
///
/// // One register chains all four accesses; the repeated +7 delta
/// // dominates and is worth a modify register.
/// let dm = DistanceModel::from_offsets(&[0, 7, 14, 21], 22, 1);
/// let cover = PathCover::single_chain(4);
/// let alloc = ModifyAllocation::for_cover(&cover, &dm, 1);
/// assert_eq!(alloc.values(), &[7]);
/// assert!(alloc.is_free_delta(7));
/// assert!(!alloc.is_free_delta(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModifyAllocation {
    values: Vec<i64>,
    savings: u32,
}

impl ModifyAllocation {
    /// No modify registers (the plain paper machine).
    pub fn none() -> Self {
        ModifyAllocation {
            values: Vec::new(),
            savings: 0,
        }
    }

    /// Allocates at most `count` modify registers for the steady-state
    /// execution of `cover`, picking the over-range deltas (intra steps
    /// and wrap steps) with the highest per-iteration frequency.
    ///
    /// Ties are broken toward smaller `|delta|`, then smaller `delta`, so
    /// the result is deterministic.
    pub fn for_cover(cover: &PathCover, dm: &DistanceModel, count: usize) -> Self {
        Self::for_covers([(cover, dm)], count)
    }

    /// Like [`ModifyAllocation::for_cover`], but pooling the over-range
    /// deltas of several covers (one per array of a loop) into one global
    /// ranking — modify registers are a machine-wide resource.
    pub fn for_covers<'a>(
        items: impl IntoIterator<Item = (&'a PathCover, &'a DistanceModel)>,
        count: usize,
    ) -> Self {
        Self::for_covers_with_wrap(items, count, true)
    }

    /// Like [`ModifyAllocation::for_covers`], but with explicit control
    /// over whether the back-edge (wrap) steps participate in the
    /// frequency ranking.
    ///
    /// Code generation always includes wraps (`true` — the generated
    /// body applies a wrap delta to every register once per iteration);
    /// the paper-literal cost model excludes them, and a cost model
    /// pricing modify registers must rank over exactly the steps it
    /// charges for, or predicted and measured costs drift apart.
    pub fn for_covers_with_wrap<'a>(
        items: impl IntoIterator<Item = (&'a PathCover, &'a DistanceModel)>,
        count: usize,
        include_wrap: bool,
    ) -> Self {
        if count == 0 {
            return Self::none();
        }
        let mut freq: HashMap<i64, u32> = HashMap::new();
        for (cover, dm) in items {
            for path in cover.paths() {
                for delta in path.intra_steps(dm) {
                    if !dm.is_free(delta) {
                        *freq.entry(delta).or_insert(0) += 1;
                    }
                }
                if include_wrap {
                    let wrap = path.wrap_step(dm);
                    if !dm.is_free(wrap) {
                        *freq.entry(wrap).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<(i64, u32)> = freq.into_iter().collect();
        ranked
            .sort_by_key(|&(delta, count)| (std::cmp::Reverse(count), delta.unsigned_abs(), delta));
        ranked.truncate(count);
        let savings = ranked.iter().map(|&(_, c)| c).sum();
        let values = ranked.into_iter().map(|(delta, _)| delta).collect();
        ModifyAllocation { values, savings }
    }

    /// The values held in modify registers, most valuable first
    /// (index = `MrId`).
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Unit-cost updates per iteration eliminated by this allocation.
    pub fn savings(&self) -> u32 {
        self.savings
    }

    /// The modify register holding `delta`, if any.
    pub fn register_for(&self, delta: i64) -> Option<usize> {
        self.values.iter().position(|&v| v == delta)
    }

    /// `true` if `delta` can be applied for free through a modify register.
    pub fn is_free_delta(&self, delta: i64) -> bool {
        self.values.contains(&delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    #[test]
    fn none_allocates_nothing() {
        let a = ModifyAllocation::none();
        assert!(a.values().is_empty());
        assert_eq!(a.savings(), 0);
        assert_eq!(a.register_for(3), None);
    }

    #[test]
    fn zero_count_behaves_like_none() {
        let dm = DistanceModel::from_offsets(&[0, 7], 1, 1);
        let a = ModifyAllocation::for_cover(&PathCover::single_chain(2), &dm, 0);
        assert_eq!(a, ModifyAllocation::none());
    }

    #[test]
    fn most_frequent_over_range_delta_wins() {
        // Steps: +5, -9, +5, +5 → over-range freq {5: 3, -9: 1}.
        let dm = DistanceModel::from_offsets(&[0, 5, -4, 1, 6], 1, 1);
        let cover = PathCover::single_chain(5);
        let a = ModifyAllocation::for_cover(&cover, &dm, 1);
        assert_eq!(a.values(), &[5]);
        assert_eq!(a.savings(), 3);
        assert_eq!(a.register_for(5), Some(0));
    }

    #[test]
    fn wrap_steps_are_counted() {
        // Single path 0 → 1 with stride 9: wrap = 0 + 9 - 1 = 8.
        let dm = DistanceModel::from_offsets(&[0, 1], 9, 1);
        let cover = PathCover::single_chain(2);
        let a = ModifyAllocation::for_cover(&cover, &dm, 2);
        assert_eq!(a.values(), &[8]);
        assert_eq!(a.savings(), 1);
    }

    #[test]
    fn wrap_steps_can_be_excluded() {
        // Same chain: without the wrap step there is no over-range delta
        // left to allocate (the only intra step is +1, in range).
        let dm = DistanceModel::from_offsets(&[0, 1], 9, 1);
        let cover = PathCover::single_chain(2);
        let a = ModifyAllocation::for_covers_with_wrap([(&cover, &dm)], 2, false);
        assert!(a.values().is_empty());
        assert_eq!(a.savings(), 0);
    }

    #[test]
    fn free_deltas_are_never_allocated() {
        // Stride 4 closes the wrap (0 + 4 - 3 = 1), so every step of the
        // chain — intra and wrap — is in range.
        let dm = DistanceModel::from_offsets(&[0, 1, 2, 3], 4, 1);
        let cover = PathCover::single_chain(4);
        let a = ModifyAllocation::for_cover(&cover, &dm, 4);
        assert!(a.values().is_empty(), "all steps are in range");
    }

    #[test]
    fn ties_prefer_small_magnitudes_deterministically() {
        // Deltas +9 and -9 appear once each; |9| ties, then -9 < 9 picks -9.
        let p1 = Path::new(vec![0, 1]).unwrap(); // 0 → 9: +9
        let p2 = Path::new(vec![2, 3]).unwrap(); // 9 → 0: -9
        let dm = DistanceModel::from_offsets(&[0, 9, 9, 0], 0, 1);
        // stride 0 is not allowed by LoopSpec but fine for a raw model:
        // wrap p1: 0 + 0 - 9 = -9, p2: 9 + 0 - 0 = 9; they tie with the
        // intra steps.
        let cover = PathCover::new(vec![p1, p2], 4).unwrap();
        let a = ModifyAllocation::for_cover(&cover, &dm, 1);
        assert_eq!(a.values(), &[-9]);
        assert_eq!(a.savings(), 2);
    }

    #[test]
    fn count_caps_the_number_of_values() {
        let dm = DistanceModel::from_offsets(&[0, 10, 30, 60, 100], 1, 1);
        let cover = PathCover::single_chain(5);
        let a = ModifyAllocation::for_cover(&cover, &dm, 2);
        assert_eq!(a.values().len(), 2);
        assert!(a.savings() >= 2);
    }

    /// Table-driven edge cases of the ranking: zero registers, more
    /// registers than distinct over-range deltas, tied frequencies, and
    /// deltas exactly on the modify-range boundary.
    #[test]
    fn ranking_edge_case_table() {
        struct Case {
            name: &'static str,
            offsets: &'static [i64],
            stride: i64,
            modify_range: u32,
            count: usize,
            expect_values: &'static [i64],
            expect_savings: u32,
        }
        let cases = [
            Case {
                // No modify registers at all: nothing is ever allocated,
                // whatever the deltas look like.
                name: "zero_registers",
                offsets: &[0, 10, 20, 30],
                stride: 1,
                modify_range: 1,
                count: 0,
                expect_values: &[],
                expect_savings: 0,
            },
            Case {
                // Steps +10, +10, +10, wrap -29: two distinct over-range
                // deltas, four registers offered — only the two distinct
                // values are loaded, never padding.
                name: "more_registers_than_distinct_deltas",
                offsets: &[0, 10, 20, 30],
                stride: 1,
                modify_range: 1,
                count: 4,
                expect_values: &[10, -29],
                expect_savings: 4,
            },
            Case {
                // Steps +7, -7, +7, -7, wrap +2 (free): +7 and -7 tie at
                // frequency 2; |7| ties too, then the smaller signed value
                // (-7) wins the single register deterministically.
                name: "tied_delta_frequencies",
                offsets: &[0, 7, 0, 7, 0],
                stride: 2,
                modify_range: 2,
                count: 1,
                expect_values: &[-7],
                expect_savings: 2,
            },
            Case {
                // Steps +3 (= M: free), +4 (= M + 1: over-range), wrap -6.
                // The boundary delta |d| == M must never consume a modify
                // register; the first over-range value is exactly M + 1.
                name: "deltas_on_the_modify_range_boundary",
                offsets: &[0, 3, 7],
                stride: 1,
                modify_range: 3,
                count: 2,
                expect_values: &[4, -6],
                expect_savings: 2,
            },
        ];
        for case in cases {
            let dm = DistanceModel::from_offsets(case.offsets, case.stride, case.modify_range);
            let cover = PathCover::single_chain(case.offsets.len());
            let a = ModifyAllocation::for_cover(&cover, &dm, case.count);
            assert_eq!(a.values(), case.expect_values, "{}", case.name);
            assert_eq!(a.savings(), case.expect_savings, "{}", case.name);
            for &v in a.values() {
                assert!(
                    !dm.is_free(v),
                    "{}: in-range delta {v} allocated",
                    case.name
                );
            }
        }
    }
}
