//! The paper's graph model `G = (V, E)` (Section 2, Figure 1).

use std::fmt::Write as _;

use raco_ir::AccessPattern;

use crate::distance::DistanceModel;

/// The access graph of a pattern: one node per access, an intra-iteration
/// edge `(a_i, a_j)` (`i < j`) whenever the address distance is within the
/// auto-modify range `M`, and an inter-iteration edge `(a_i, a_j)`
/// whenever stepping from `a_i` at the end of iteration `t` to `a_j` at
/// the start of iteration `t+1` is free.
///
/// Every path of intra-iteration edges is an opportunity to serve several
/// accesses from a single address register at zero cost; covering the graph
/// with `K` node-disjoint (wrap-closable) paths is a zero-cost allocation
/// to `K` registers (Section 2 of the paper).
///
/// # Examples
///
/// Reproducing Figure 1:
///
/// ```
/// use raco_graph::AccessGraph;
/// use raco_ir::examples;
///
/// let spec = examples::paper_loop();
/// let g = AccessGraph::build(&spec.patterns()[0], 1);
/// assert_eq!(g.node_count(), 7);
/// assert_eq!(g.intra_edges().len(), 11);
/// println!("{}", g.to_dot());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessGraph {
    dm: DistanceModel,
    intra: Vec<(usize, usize)>,
    inter: Vec<(usize, usize)>,
}

impl AccessGraph {
    /// Builds the access graph of `pattern` under auto-modify range
    /// `modify_range`.
    pub fn build(pattern: &AccessPattern, modify_range: u32) -> Self {
        Self::from_distance_model(DistanceModel::new(pattern, modify_range))
    }

    /// Builds the access graph from an existing distance model.
    pub fn from_distance_model(dm: DistanceModel) -> Self {
        let n = dm.len();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if dm.free_intra(i, j) {
                    intra.push((i, j));
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                if dm.free_wrap(i, j) {
                    inter.push((i, j));
                }
            }
        }
        AccessGraph { dm, intra, inter }
    }

    /// The underlying distance model.
    pub fn distance_model(&self) -> &DistanceModel {
        &self.dm
    }

    /// Number of nodes (accesses).
    pub fn node_count(&self) -> usize {
        self.dm.len()
    }

    /// All intra-iteration zero-cost edges `(i, j)` with `i < j`, in
    /// lexicographic order.
    pub fn intra_edges(&self) -> &[(usize, usize)] {
        &self.intra
    }

    /// All inter-iteration zero-cost edges `(from, to)` — `from` served
    /// last in iteration `t`, `to` served first in iteration `t+1`
    /// (self-loops included).
    pub fn inter_edges(&self) -> &[(usize, usize)] {
        &self.inter
    }

    /// `true` if `(i, j)` is a zero-cost intra-iteration edge.
    pub fn has_intra_edge(&self, i: usize, j: usize) -> bool {
        i < j && i < self.node_count() && j < self.node_count() && self.dm.free_intra(i, j)
    }

    /// `true` if `(from, to)` is a zero-cost inter-iteration edge.
    pub fn has_inter_edge(&self, from: usize, to: usize) -> bool {
        from < self.node_count() && to < self.node_count() && self.dm.free_wrap(from, to)
    }

    /// The intra-iteration successors of node `i` (nodes `j > i` reachable
    /// by one free step).
    pub fn intra_successors(&self, i: usize) -> Vec<usize> {
        ((i + 1)..self.node_count())
            .filter(|&j| self.dm.free_intra(i, j))
            .collect()
    }

    /// Out-degree of node `i` in the intra-iteration graph.
    pub fn intra_out_degree(&self, i: usize) -> usize {
        self.intra.iter().filter(|&&(a, _)| a == i).count()
    }

    /// Renders the graph in Graphviz DOT format: solid arcs for
    /// intra-iteration edges, dashed arcs for inter-iteration edges, nodes
    /// labelled `a_k` with their offsets (compare Figure 1 of the paper).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph access_pattern {\n");
        out.push_str("  rankdir=LR;\n  node [shape=circle];\n");
        for i in 0..self.node_count() {
            let _ = writeln!(
                out,
                "  a{} [label=\"a_{}\\noff {}\"];",
                i + 1,
                i + 1,
                self.dm.offset(i)
            );
        }
        for &(i, j) in &self.intra {
            let _ = writeln!(out, "  a{} -> a{};", i + 1, j + 1);
        }
        for &(i, j) in &self.inter {
            let _ = writeln!(
                out,
                "  a{} -> a{} [style=dashed, constraint=false];",
                i + 1,
                j + 1
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> AccessGraph {
        AccessGraph::from_distance_model(DistanceModel::from_offsets(
            &[1, 0, 2, -1, 1, 0, -2],
            1,
            1,
        ))
    }

    #[test]
    fn figure1_intra_edge_set_is_exact() {
        let g = figure1();
        let expected: Vec<(usize, usize)> = vec![
            (0, 1),
            (0, 2),
            (0, 4),
            (0, 5),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 4),
            (3, 5),
            (3, 6),
            (4, 5),
        ];
        assert_eq!(g.intra_edges(), expected.as_slice());
    }

    #[test]
    fn paper_example_path_is_a_graph_path() {
        let g = figure1();
        // (a_1, a_3, a_5, a_6) — each hop must be an intra edge.
        for w in [0usize, 2, 4, 5].windows(2) {
            assert!(g.has_intra_edge(w[0], w[1]), "missing edge {w:?}");
        }
    }

    #[test]
    fn inter_edges_include_wraps_used_by_singletons() {
        let g = figure1();
        // Self wrap: offset o → o + stride, distance 1 → free for all 7.
        for i in 0..7 {
            assert!(g.has_inter_edge(i, i));
        }
        // a_3 (offset 2) closes onto a_1 (offset 1): 1 + 1 - 2 = 0 → free.
        assert!(g.has_inter_edge(2, 0));
        // a_7 (offset -2) to a_1 (offset 1): 4 → not free.
        assert!(!g.has_inter_edge(6, 0));
    }

    #[test]
    fn successors_and_degrees_agree_with_edges() {
        let g = figure1();
        assert_eq!(g.intra_successors(0), vec![1, 2, 4, 5]);
        assert_eq!(g.intra_out_degree(0), 4);
        assert_eq!(g.intra_successors(6), Vec::<usize>::new());
        assert_eq!(g.intra_out_degree(6), 0);
    }

    #[test]
    fn has_edge_bounds_checks() {
        let g = figure1();
        assert!(!g.has_intra_edge(5, 5));
        assert!(!g.has_intra_edge(3, 99));
        assert!(!g.has_inter_edge(99, 0));
    }

    #[test]
    fn dot_output_contains_nodes_and_both_edge_styles() {
        let g = figure1();
        let dot = g.to_dot();
        assert!(dot.contains("digraph access_pattern"));
        assert!(dot.contains("a1 [label=\"a_1\\noff 1\"];"));
        assert!(dot.contains("a1 -> a2;"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn larger_modify_range_adds_edges() {
        let g1 = figure1();
        let g2 = AccessGraph::from_distance_model(DistanceModel::from_offsets(
            &[1, 0, 2, -1, 1, 0, -2],
            1,
            2,
        ));
        assert!(g2.intra_edges().len() > g1.intra_edges().len());
        assert!(g2.has_intra_edge(1, 2)); // distance 2, free with M = 2
    }

    #[test]
    fn build_from_pattern_equals_build_from_model() {
        let pattern = raco_ir::AccessPattern::from_offsets(&[1, 0, 2], 1);
        let a = AccessGraph::build(&pattern, 1);
        let b = AccessGraph::from_distance_model(DistanceModel::from_offsets(&[1, 0, 2], 1, 1));
        assert_eq!(a, b);
    }
}
