//! The allocation cache — the pipeline's hot path.
//!
//! Branch-and-bound path-cover search (Phase 1) dominates compilation
//! time, and batch workloads repeat themselves: the same tap chain, the
//! same interleaved re/im walk, the same reduction shape appears in
//! loop after loop at different base offsets. Canonicalization
//! ([`raco_ir::canonical`]) maps all of those to one key, so the second
//! occurrence is a map lookup instead of a search.
//!
//! Two memo tables, keyed at different strengths:
//!
//! * **allocations** — keyed by the *exact* (shift-normalized)
//!   canonical form plus `(M, k, options)`. A hit returns an
//!   [`Allocation`] whose distance model is identical to the one the
//!   optimizer would have built, so covers, costs and generated update
//!   deltas are all bit-for-bit reusable.
//! * **cost curves** — keyed by the weaker *cost class* (sign
//!   normalized) plus `(M, k_max, options)`. Curves only carry costs,
//!   which are mirror-invariant **on symmetric machines**, so mirrored
//!   patterns share entries there; under an asymmetric update range
//!   (e.g. `[0, 1]`) mirroring changes costs, and the curve table falls
//!   back to the exact canonical key.
//!
//! The map is a `DashMap`-style sharded `RwLock<HashMap>`: shard by
//! key hash, readers never block each other, and a miss computes the
//! value *outside* the lock (a racing duplicate computation is
//! deterministic, so first-write-wins is harmless).
//!
//! A long-lived server compiling unbounded client traffic cannot let
//! the tables grow forever, so the cache takes a [`CachePolicy`]:
//! unbounded (the default — batch runs are finite) or bounded, which
//! evicts the oldest-inserted entries per table once a size limit is
//! reached (FIFO; see [`CachePolicy::Bounded`] for why not LRU).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use raco_core::{Allocation, OptimizerOptions};
use raco_ir::{CanonicalPattern, UpdateRange};

const SHARDS: usize = 16;

/// Bounds on the number of entries the cache may keep resident.
///
/// The policy applies to each of the cache's two tables (allocations
/// and cost curves) independently; hit/miss/eviction counters are
/// never bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Keep every entry. The right choice for batch compilation: the
    /// working set is the input, which is finite.
    #[default]
    Unbounded,
    /// Keep at most (approximately) this many entries per table,
    /// evicting the oldest-inserted once full. The bound is enforced
    /// per shard, so the effective limit rounds up to a multiple of
    /// the shard count (≤ 15 entries of slack); a limit of zero still
    /// keeps one entry per shard.
    ///
    /// Eviction is FIFO rather than LRU on purpose: lookups vastly
    /// outnumber insertions here, and FIFO keeps the read path free of
    /// bookkeeping writes (an LRU would turn every shared-lock read
    /// into an exclusive-lock touch).
    Bounded(usize),
}

impl CachePolicy {
    /// Per-shard entry budget; `None` means unbounded.
    fn shard_capacity(self) -> Option<usize> {
        match self {
            CachePolicy::Unbounded => None,
            CachePolicy::Bounded(max) => Some(max.div_ceil(SHARDS).max(1)),
        }
    }
}

/// One shard: the entries plus their insertion order (for FIFO
/// eviction). The queue is only consulted when a capacity is set.
#[derive(Debug)]
struct Shard<K, V> {
    entries: HashMap<K, Arc<V>>,
    order: VecDeque<K>,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

/// A concurrent hash map sharded by key hash.
#[derive(Debug)]
struct ShardedMap<K, V> {
    shards: Vec<RwLock<Shard<K, V>>>,
    /// Entries kept per shard; `None` disables eviction.
    shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> ShardedMap<K, V> {
    fn new(policy: CachePolicy) -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::new())).collect(),
            shard_capacity: policy.shard_capacity(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<Shard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        let shard = self.shard(&key);
        if let Some(v) = shard
            .read()
            .expect("cache shard poisoned")
            .entries
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        let mut guard = shard.write().expect("cache shard poisoned");
        // A racer may have inserted meanwhile; both values are
        // deterministic functions of the key, keep the first.
        if let Some(existing) = guard.entries.get(&key) {
            return Arc::clone(existing);
        }
        guard.entries.insert(key.clone(), Arc::clone(&value));
        if let Some(capacity) = self.shard_capacity {
            guard.order.push_back(key);
            while guard.entries.len() > capacity {
                // The queue never outlives its entries (clear() resets
                // both), so the front is always a live key.
                let oldest = guard.order.pop_front().expect("order tracks entries");
                guard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        value
    }

    /// Inserts an externally produced value (a snapshot entry), going
    /// through the same capacity/eviction bookkeeping as a computed
    /// miss but touching neither the hit nor the miss counter. Returns
    /// `false` if the key was already present (the resident value
    /// wins — it is as authoritative as the snapshot's).
    fn insert(&self, key: K, value: Arc<V>) -> bool {
        let shard = self.shard(&key);
        let mut guard = shard.write().expect("cache shard poisoned");
        if guard.entries.contains_key(&key) {
            return false;
        }
        guard.entries.insert(key.clone(), value);
        if let Some(capacity) = self.shard_capacity {
            guard.order.push_back(key);
            while guard.entries.len() > capacity {
                let oldest = guard.order.pop_front().expect("order tracks entries");
                guard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }

    /// Clones out every resident entry (keys and value handles; the
    /// values themselves are shared, not copied).
    fn export(&self) -> Vec<(K, Arc<V>)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("cache shard poisoned")
                    .entries
                    .iter()
                    .map(|(k, v)| (k.clone(), Arc::clone(v)))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").entries.len())
            .sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.write().expect("cache shard poisoned");
            guard.entries.clear();
            guard.order.clear();
        }
    }
}

/// Exact-reuse key: same distance model, same machine, same options.
/// `pub(crate)` so the snapshot codec ([`crate::persist`]) can
/// round-trip entries without widening the public API.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct AllocationKey {
    pub(crate) canonical: CanonicalPattern,
    pub(crate) range: UpdateRange,
    pub(crate) registers: usize,
    pub(crate) options: OptimizerOptions,
}

/// Cost-class key for register-partitioning curves.
///
/// On symmetric machines `cost_class` is the mirror-normalized class;
/// on asymmetric machines it is the exact canonical form (mirror
/// sharing would be unsound — see [`curve_class`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CurveKey {
    pub(crate) cost_class: CanonicalPattern,
    pub(crate) range: UpdateRange,
    pub(crate) k_max: usize,
    pub(crate) options: OptimizerOptions,
}

/// The pattern key a cost curve is shared under for a given machine:
/// the mirror-normalized cost class when the update range is symmetric
/// (mirroring preserves costs), the exact canonical form otherwise.
pub(crate) fn curve_class(canonical: &CanonicalPattern, range: UpdateRange) -> CanonicalPattern {
    if range.is_symmetric() {
        canonical.cost_class()
    } else {
        canonical.clone()
    }
}

/// Every resident allocation entry, exported for serialization.
pub(crate) type AllocationEntries = Vec<(AllocationKey, Arc<Allocation>)>;

/// Every resident cost-curve entry, exported for serialization.
pub(crate) type CurveEntries = Vec<(CurveKey, Arc<Vec<u32>>)>;

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Allocation-table hits.
    pub allocation_hits: u64,
    /// Allocation-table misses (each one ran the two-phase allocator).
    pub allocation_misses: u64,
    /// Cost-curve hits.
    pub curve_hits: u64,
    /// Cost-curve misses (each one ran a full merge trajectory).
    pub curve_misses: u64,
    /// Distinct allocations currently cached.
    pub allocation_entries: usize,
    /// Distinct cost curves currently cached.
    pub curve_entries: usize,
    /// Allocations evicted under a [`CachePolicy::Bounded`] limit.
    pub allocation_evictions: u64,
    /// Cost curves evicted under a [`CachePolicy::Bounded`] limit.
    pub curve_evictions: u64,
    /// Entries (allocations + curves) restored from snapshots via
    /// [`crate::persist`]. Loaded entries count as neither hits nor
    /// misses; their first lookup is a hit.
    pub loaded: u64,
    /// Entries (allocations + curves) written by the most recent
    /// snapshot save (not cumulative — each save overwrites it, so a
    /// server's stats always describe its latest snapshot).
    pub persisted: u64,
}

impl CacheStats {
    /// Adds another cache's statistics into this one, field by field.
    ///
    /// Serve mode runs one [`AllocationCache`] per shard; the `stats`
    /// and `metrics` ops report the fleet as a whole by folding every
    /// shard's snapshot into one aggregate. `persisted` is summed like
    /// the rest — each shard's latest snapshot contributes its own
    /// entry count.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.allocation_hits += other.allocation_hits;
        self.allocation_misses += other.allocation_misses;
        self.curve_hits += other.curve_hits;
        self.curve_misses += other.curve_misses;
        self.allocation_entries += other.allocation_entries;
        self.curve_entries += other.curve_entries;
        self.allocation_evictions += other.allocation_evictions;
        self.curve_evictions += other.curve_evictions;
        self.loaded += other.loaded;
        self.persisted += other.persisted;
    }

    /// Overall hit rate across both tables, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.allocation_hits + self.curve_hits;
        let total = hits + self.allocation_misses + self.curve_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// The pipeline's allocation memo. Cheap to share (`&self` everywhere,
/// internally synchronized); one instance typically lives as long as a
/// batch compilation server would.
#[derive(Debug)]
pub struct AllocationCache {
    allocations: ShardedMap<AllocationKey, Allocation>,
    curves: ShardedMap<CurveKey, Vec<u32>>,
    policy: CachePolicy,
    /// Entries restored from snapshots (see [`crate::persist`]).
    loaded: AtomicU64,
    /// Entries written by the most recent snapshot save.
    persisted: AtomicU64,
}

impl Default for AllocationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocationCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_policy(CachePolicy::Unbounded)
    }

    /// An empty cache with an explicit retention policy.
    pub fn with_policy(policy: CachePolicy) -> Self {
        AllocationCache {
            allocations: ShardedMap::new(policy),
            curves: ShardedMap::new(policy),
            policy,
            loaded: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
        }
    }

    /// The retention policy this cache was built with.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Returns the cached allocation for the canonical pattern under
    /// `(range, registers, options)`, computing it with `compute` on a
    /// miss.
    pub fn allocation(
        &self,
        canonical: &CanonicalPattern,
        range: UpdateRange,
        registers: usize,
        options: &OptimizerOptions,
        compute: impl FnOnce() -> Allocation,
    ) -> Arc<Allocation> {
        self.allocations.get_or_insert_with(
            AllocationKey {
                canonical: canonical.clone(),
                range,
                registers,
                options: *options,
            },
            compute,
        )
    }

    /// Returns the cached register/cost curve for the pattern's curve
    /// class under `(range, k_max, options)`, computing it with
    /// `compute` on a miss. Mirror-image patterns share a curve only on
    /// symmetric machines (see `curve_class`).
    pub fn cost_curve(
        &self,
        canonical: &CanonicalPattern,
        range: UpdateRange,
        k_max: usize,
        options: &OptimizerOptions,
        compute: impl FnOnce() -> Vec<u32>,
    ) -> Arc<Vec<u32>> {
        self.curves.get_or_insert_with(
            CurveKey {
                cost_class: curve_class(canonical, range),
                range,
                k_max,
                options: *options,
            },
            compute,
        )
    }

    /// Current statistics (hit/miss counters are cumulative).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            allocation_hits: self.allocations.hits.load(Ordering::Relaxed),
            allocation_misses: self.allocations.misses.load(Ordering::Relaxed),
            curve_hits: self.curves.hits.load(Ordering::Relaxed),
            curve_misses: self.curves.misses.load(Ordering::Relaxed),
            allocation_entries: self.allocations.len(),
            curve_entries: self.curves.len(),
            allocation_evictions: self.allocations.evictions.load(Ordering::Relaxed),
            curve_evictions: self.curves.evictions.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
        }
    }

    /// Clones out every resident entry of both tables for
    /// serialization. Value handles are shared (`Arc`), not deep
    /// copies; ongoing lookups are unaffected.
    pub(crate) fn export(&self) -> (AllocationEntries, CurveEntries) {
        (self.allocations.export(), self.curves.export())
    }

    /// Installs one decoded allocation entry (snapshot restore).
    /// Returns `false` if an entry for the key was already resident.
    pub(crate) fn install_allocation(&self, key: AllocationKey, value: Arc<Allocation>) -> bool {
        let fresh = self.allocations.insert(key, value);
        if fresh {
            self.loaded.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Installs one decoded cost-curve entry (snapshot restore).
    /// Returns `false` if an entry for the key was already resident.
    pub(crate) fn install_curve(&self, key: CurveKey, value: Arc<Vec<u32>>) -> bool {
        let fresh = self.curves.insert(key, value);
        if fresh {
            self.loaded.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Copies every resident entry of `other` into this cache,
    /// returning how many were freshly installed (keys already present
    /// here keep their resident value). Value handles are shared, not
    /// deep-copied, and neither the hit/miss nor the `loaded` counters
    /// move — absorption is bookkeeping, not traffic.
    ///
    /// Serve mode uses this to fold per-shard caches into one combined
    /// cache before writing a shutdown snapshot, so a snapshot taken
    /// from a sharded server warms a single-process boot completely.
    pub fn absorb_entries(&self, other: &AllocationCache) -> usize {
        let (allocations, curves) = other.export();
        let mut installed = 0;
        for (key, value) in allocations {
            if self.allocations.insert(key, value) {
                installed += 1;
            }
        }
        for (key, value) in curves {
            if self.curves.insert(key, value) {
                installed += 1;
            }
        }
        installed
    }

    /// Records how many entries the most recent snapshot save wrote.
    pub(crate) fn note_persisted(&self, entries: u64) {
        self.persisted.store(entries, Ordering::Relaxed);
    }

    /// Drops every entry (counters are kept; they are cumulative).
    pub fn clear(&self) {
        self.allocations.clear();
        self.curves.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_core::Optimizer;
    use raco_ir::{AccessPattern, AguSpec};

    fn canonical(offsets: &[i64]) -> CanonicalPattern {
        CanonicalPattern::from_offsets(offsets, 1)
    }

    fn sym(m: u32) -> UpdateRange {
        UpdateRange::symmetric(m)
    }

    #[test]
    fn shifted_patterns_hit_the_allocation_table() {
        let cache = AllocationCache::new();
        let options = OptimizerOptions::default();
        let optimizer = Optimizer::new(AguSpec::new(2, 1).unwrap());
        let compute = |offs: &[i64]| {
            let pattern = AccessPattern::from_offsets(offs, 1);
            optimizer.allocate(&pattern)
        };
        let a = cache.allocation(&canonical(&[1, 0, 2]), sym(1), 2, &options, || {
            compute(&[1, 0, 2])
        });
        // Same shape shifted by +7: identical canonical form → hit.
        let b = cache.allocation(&canonical(&[8, 7, 9]), sym(1), 2, &options, || {
            panic!("must not recompute")
        });
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.allocation_hits, 1);
        assert_eq!(stats.allocation_misses, 1);
        assert_eq!(stats.allocation_entries, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn mirrored_patterns_share_curves_but_not_allocations() {
        let cache = AllocationCache::new();
        let options = OptimizerOptions::default();
        // [0, 1, 2] and its mirror [0, -1, -2] (stride negated too).
        let fwd = CanonicalPattern::from_offsets(&[0, 1, 2], 1);
        let bwd = fwd.mirror();
        let c1 = cache.cost_curve(&fwd, sym(1), 4, &options, || vec![1, 0, 0, 0]);
        let c2 = cache.cost_curve(&bwd, sym(1), 4, &options, || panic!("curve must hit"));
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(cache.stats().curve_hits, 1);

        let optimizer = Optimizer::new(AguSpec::new(1, 1).unwrap());
        let _ = cache.allocation(&fwd, sym(1), 1, &options, || {
            optimizer.allocate(&AccessPattern::from_offsets(&[0, 1, 2], 1))
        });
        let _ = cache.allocation(&bwd, sym(1), 1, &options, || {
            optimizer.allocate(&AccessPattern::from_offsets(&[0, -1, -2], -1))
        });
        // Mirrors are distinct exact keys: no false sharing of deltas.
        assert_eq!(cache.stats().allocation_misses, 2);
        assert_eq!(cache.stats().allocation_entries, 2);
    }

    #[test]
    fn asymmetric_ranges_do_not_share_mirrored_curves() {
        let cache = AllocationCache::new();
        let options = OptimizerOptions::default();
        let fwd = CanonicalPattern::from_offsets(&[0, 1, 2], 1);
        let bwd = fwd.mirror();
        // Post-increment-only machine: +1 is free, -1 is not, so the
        // mirror of a pattern genuinely costs differently and must get
        // its own curve entry.
        let range = UpdateRange::new(0, 1).unwrap();
        let c1 = cache.cost_curve(&fwd, range, 4, &options, || vec![0, 0, 0, 0]);
        let c2 = cache.cost_curve(&bwd, range, 4, &options, || vec![2, 1, 1, 1]);
        assert!(!Arc::ptr_eq(&c1, &c2));
        assert_ne!(*c1, *c2);
        assert_eq!(cache.stats().curve_misses, 2);
        assert_eq!(cache.stats().curve_entries, 2);
    }

    #[test]
    fn distinct_machines_do_not_collide() {
        let cache = AllocationCache::new();
        let options = OptimizerOptions::default();
        let key = canonical(&[0, 5]);
        let _ = cache.cost_curve(&key, sym(1), 4, &options, || vec![1, 1, 1, 1]);
        let _ = cache.cost_curve(&key, sym(2), 4, &options, || vec![0, 0, 0, 0]);
        let _ = cache.cost_curve(&key, sym(1), 8, &options, || vec![1; 8]);
        assert_eq!(cache.stats().curve_entries, 3);
        assert_eq!(cache.stats().curve_misses, 3);
    }

    #[test]
    fn clear_empties_tables_but_keeps_counters() {
        let cache = AllocationCache::new();
        let options = OptimizerOptions::default();
        let _ = cache.cost_curve(&canonical(&[0, 1]), sym(1), 2, &options, || vec![0, 0]);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.curve_entries, 0);
        assert_eq!(stats.curve_misses, 1);
    }

    #[test]
    fn bounded_policy_evicts_oldest_entries() {
        let cache = AllocationCache::with_policy(CachePolicy::Bounded(32));
        assert_eq!(cache.policy(), CachePolicy::Bounded(32));
        let options = OptimizerOptions::default();
        // Sweep far more distinct shapes than the limit admits.
        for i in 0..1000i64 {
            let _ = cache.cost_curve(
                &canonical(&[0, i + 1, 2 * i + 3]),
                sym(1),
                4,
                &options,
                || vec![1, 0, 0, 0],
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.curve_misses, 1000);
        // Bound is enforced per shard: at most ceil(32/16) = 2 each.
        assert!(
            stats.curve_entries <= 32 + SHARDS,
            "entry count {} not bounded",
            stats.curve_entries
        );
        assert!(stats.curve_evictions >= 1000 - (32 + SHARDS) as u64);
        assert_eq!(stats.allocation_evictions, 0);

        // Evicted keys recompute (a miss, not a corrupted hit).
        let first = canonical(&[0, 1, 3]);
        let recomputed = cache.cost_curve(&first, sym(1), 4, &options, || vec![9, 9, 9, 9]);
        assert_eq!(*recomputed, vec![9, 9, 9, 9]);
    }

    #[test]
    fn bounded_policy_keeps_hot_entries_until_displaced() {
        let cache = AllocationCache::with_policy(CachePolicy::Bounded(0));
        let options = OptimizerOptions::default();
        // Limit 0 still keeps one entry per shard, so an immediate
        // repeat of the same key hits.
        let key = canonical(&[0, 4]);
        let _ = cache.cost_curve(&key, sym(1), 2, &options, || vec![1, 1]);
        let _ = cache.cost_curve(&key, sym(1), 2, &options, || panic!("must hit"));
        assert_eq!(cache.stats().curve_hits, 1);
    }

    #[test]
    fn clear_resets_bounded_bookkeeping() {
        let cache = AllocationCache::with_policy(CachePolicy::Bounded(16));
        let options = OptimizerOptions::default();
        for i in 0..64i64 {
            let _ = cache.cost_curve(&canonical(&[0, i + 1]), sym(1), 2, &options, || vec![0, 0]);
        }
        cache.clear();
        assert_eq!(cache.stats().curve_entries, 0);
        // Refill after clear still respects the bound (the FIFO queue
        // was reset along with the entries).
        for i in 0..64i64 {
            let _ = cache.cost_curve(&canonical(&[0, i + 1]), sym(1), 2, &options, || vec![0, 0]);
        }
        assert!(cache.stats().curve_entries <= 16 + SHARDS);
    }

    #[test]
    fn concurrent_bounded_access_stays_within_the_limit() {
        let cache = AllocationCache::with_policy(CachePolicy::Bounded(8));
        let options = OptimizerOptions::default();
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let cache = &cache;
                let options = &options;
                s.spawn(move || {
                    for i in 0..256i64 {
                        let key = canonical(&[0, 1 + (i * 4 + t) % 97]);
                        let _ = cache.cost_curve(&key, sym(1), 2, options, || vec![1, 1]);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.curve_entries <= 8 + SHARDS);
        assert_eq!(stats.curve_hits + stats.curve_misses, 4 * 256);
    }

    #[test]
    fn absorb_sums_every_stat_field() {
        let mut total = CacheStats {
            allocation_hits: 1,
            allocation_misses: 2,
            curve_hits: 3,
            curve_misses: 4,
            allocation_entries: 5,
            curve_entries: 6,
            allocation_evictions: 7,
            curve_evictions: 8,
            loaded: 9,
            persisted: 10,
        };
        total.absorb(&total.clone());
        assert_eq!(total.allocation_hits, 2);
        assert_eq!(total.allocation_misses, 4);
        assert_eq!(total.curve_hits, 6);
        assert_eq!(total.curve_misses, 8);
        assert_eq!(total.allocation_entries, 10);
        assert_eq!(total.curve_entries, 12);
        assert_eq!(total.allocation_evictions, 14);
        assert_eq!(total.curve_evictions, 16);
        assert_eq!(total.loaded, 18);
        assert_eq!(total.persisted, 20);
    }

    #[test]
    fn absorb_entries_merges_disjoint_caches_without_counting_traffic() {
        let options = OptimizerOptions::default();
        let a = AllocationCache::new();
        let b = AllocationCache::new();
        let _ = a.cost_curve(&canonical(&[0, 1]), sym(1), 2, &options, || vec![1, 0]);
        let _ = b.cost_curve(&canonical(&[0, 2]), sym(1), 2, &options, || vec![1, 1]);
        // Overlap: both caches hold the [0, 1] curve key under k_max 4.
        let _ = a.cost_curve(&canonical(&[0, 1]), sym(1), 4, &options, || {
            vec![1, 0, 0, 0]
        });
        let _ = b.cost_curve(&canonical(&[0, 1]), sym(1), 4, &options, || {
            vec![1, 0, 0, 0]
        });

        let merged = AllocationCache::new();
        assert_eq!(merged.absorb_entries(&a), 2);
        // b shares one key with a — only the fresh one installs.
        assert_eq!(merged.absorb_entries(&b), 1);
        let stats = merged.stats();
        assert_eq!(stats.curve_entries, 3);
        assert_eq!(stats.curve_hits + stats.curve_misses, 0);
        assert_eq!(stats.loaded, 0, "absorption is not a snapshot load");

        // The merged entries are live: the next lookup is a hit.
        let _ = merged.cost_curve(&canonical(&[0, 2]), sym(1), 2, &options, || {
            panic!("absorbed entry must hit")
        });
        assert_eq!(merged.stats().curve_hits, 1);
    }

    #[test]
    fn cache_is_share_and_send_safe() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AllocationCache>();
        assert_send_sync::<CacheStats>();
    }

    #[test]
    fn concurrent_mixed_access_is_consistent() {
        let cache = AllocationCache::new();
        let options = OptimizerOptions::default();
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                let options = &options;
                s.spawn(move || {
                    for i in 0..64u64 {
                        let offs = [0i64, (i % 7) as i64, 2 * ((i + t) % 5) as i64];
                        let key = CanonicalPattern::from_offsets(&offs, 1);
                        let curve =
                            cache.cost_curve(&key, sym(1), 4, options, || vec![(i % 3) as u32; 4]);
                        assert_eq!(curve.len(), 4);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.curve_hits + stats.curve_misses,
            8 * 64,
            "every lookup is accounted"
        );
        assert!(stats.curve_entries <= 35, "only distinct shapes are stored");
    }
}
