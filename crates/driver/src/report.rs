//! Structured compilation reports: JSON and pretty tables.
//!
//! Every pipeline run produces a [`CompilationReport`]: one
//! [`UnitReport`] per input source (file, string or kernel batch), one
//! [`LoopReport`] per loop, plus batch-wide totals, cache statistics
//! and wall-clock timing. Reports are plain data — rendering to an
//! aligned text table or to JSON is a method, not a side effect, so
//! servers can ship them and tests can assert on them.

use std::fmt;
use std::time::Duration;

use raco_ir::{CostTable, UpdateRange};

use crate::cache::CacheStats;
use crate::json::Json;
use crate::timings::StageTiming;

/// Why a loop failed to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LoopFailure {
    /// Allocation failed (empty loop / more arrays than registers).
    Allocation(String),
    /// Code generation failed.
    CodeGen(String),
    /// The simulator rejected the generated program.
    Validation(String),
    /// The simulator measured a different cost than the allocator
    /// predicted (an internal consistency bug, always worth surfacing).
    CostMismatch {
        /// Allocator-predicted unit-cost updates per iteration.
        predicted: u64,
        /// Simulator-measured updates per iteration.
        measured: u64,
    },
    /// The two validation oracles disagreed: exactly one of the
    /// simulator (operational) and the declarative listing checker
    /// rejected the program. Either the program is broken in a way one
    /// oracle cannot see, or an oracle itself is — a bug class of its
    /// own, always worth surfacing.
    OracleDisagreement {
        /// The simulator's complaint, when it was the one rejecting.
        simulator: Option<String>,
        /// The checker's violation summary, when it was the one
        /// rejecting.
        checker: Option<String>,
    },
}

impl fmt::Display for LoopFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopFailure::Allocation(e) => write!(f, "allocation: {e}"),
            LoopFailure::CodeGen(e) => write!(f, "codegen: {e}"),
            LoopFailure::Validation(e) => write!(f, "validation: {e}"),
            LoopFailure::CostMismatch {
                predicted,
                measured,
            } => write!(
                f,
                "cost mismatch: allocator predicted {predicted}, simulator measured {measured}"
            ),
            LoopFailure::OracleDisagreement { simulator, checker } => match (simulator, checker) {
                (Some(sim), None) => write!(
                    f,
                    "oracle disagreement: checker passed but simulator rejected: {sim}"
                ),
                (None, Some(check)) => write!(
                    f,
                    "oracle disagreement: simulator passed but checker rejected: {check}"
                ),
                // Not constructed by the pipeline (both failing is a
                // plain validation failure), but Display must total.
                (sim, check) => write!(
                    f,
                    "oracle disagreement: simulator {:?}, checker {:?}",
                    sim, check
                ),
            },
        }
    }
}

/// Per-loop compilation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Loop label (`loop0`, `loop1`, … or the kernel name).
    pub name: String,
    /// Arrays accessed by the loop.
    pub arrays: usize,
    /// Memory accesses per iteration.
    pub accesses: usize,
    /// Address registers used by the allocation.
    pub registers_used: usize,
    /// Sum of the paper's `K̃` over the loop's arrays (virtual
    /// registers needed for a completely free schedule).
    pub virtual_registers: usize,
    /// Allocator-predicted unit-cost updates per iteration.
    pub cost: u64,
    /// Address-code words (prologue + body).
    pub code_words: u64,
    /// Simulator-measured updates per iteration (`None` when
    /// validation was disabled).
    pub measured_cost: Option<u64>,
    /// Addresses checked against the reference trace.
    pub addresses_checked: u64,
    /// Generated listing (present when listings were requested).
    pub listing: Option<String>,
    /// `None` on success, the failure otherwise. Numeric fields hold
    /// whatever had been computed when the failure was detected:
    /// allocation failures leave them at zero, while codegen,
    /// validation and cost-mismatch failures keep the allocation's
    /// figures. Check [`succeeded`](Self::succeeded), not the numbers.
    pub failure: Option<LoopFailure>,
}

impl LoopReport {
    /// `true` if the loop compiled (and, when enabled, validated).
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_owned(), Json::str(&self.name)),
            ("arrays".to_owned(), Json::UInt(self.arrays as u64)),
            ("accesses".to_owned(), Json::UInt(self.accesses as u64)),
            (
                "registers_used".to_owned(),
                Json::UInt(self.registers_used as u64),
            ),
            (
                "virtual_registers".to_owned(),
                Json::UInt(self.virtual_registers as u64),
            ),
            ("cost".to_owned(), Json::UInt(self.cost)),
            ("code_words".to_owned(), Json::UInt(self.code_words)),
            (
                "measured_cost".to_owned(),
                self.measured_cost.map_or(Json::Null, Json::UInt),
            ),
            // Explicit predicted-vs-measured pair: the allocator's
            // MR-aware prediction and the simulator's ground truth.
            // `cost` / `measured_cost` above carry the same values and
            // stay for pre-existing JSON consumers.
            ("predicted_cycles".to_owned(), Json::UInt(self.cost)),
            (
                "measured_cycles".to_owned(),
                self.measured_cost.map_or(Json::Null, Json::UInt),
            ),
            (
                "addresses_checked".to_owned(),
                Json::UInt(self.addresses_checked),
            ),
            (
                "status".to_owned(),
                Json::str(if self.succeeded() { "ok" } else { "failed" }),
            ),
        ];
        if let Some(failure) = &self.failure {
            fields.push(("failure".to_owned(), Json::str(failure.to_string())));
        }
        if let Some(listing) = &self.listing {
            fields.push(("listing".to_owned(), Json::str(listing)));
        }
        Json::Obj(fields)
    }
}

/// Per-input-unit outcome (one source file / string / kernel batch).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitReport {
    /// Unit label (file path or caller-provided name).
    pub name: String,
    /// Per-loop outcomes, in source order.
    pub loops: Vec<LoopReport>,
    /// Assembled multi-loop listing of the unit's successful loops
    /// (present when listings were requested).
    pub listing: Option<String>,
}

impl UnitReport {
    /// Number of successfully compiled loops.
    pub fn succeeded(&self) -> usize {
        self.loops.iter().filter(|l| l.succeeded()).count()
    }

    /// Number of failed loops.
    pub fn failed(&self) -> usize {
        self.loops.len() - self.succeeded()
    }

    /// Total predicted cost across successful loops.
    pub fn total_cost(&self) -> u64 {
        self.loops.iter().map(|l| l.cost).sum()
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_owned(), Json::str(&self.name)),
            (
                "loops".to_owned(),
                Json::Arr(self.loops.iter().map(LoopReport::to_json).collect()),
            ),
        ];
        if let Some(listing) = &self.listing {
            fields.push(("listing".to_owned(), Json::str(listing)));
        }
        Json::Obj(fields)
    }
}

/// The result of one batch compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilationReport {
    /// Per-unit reports, in input order.
    pub units: Vec<UnitReport>,
    /// Address registers of the target machine (the paper's `K`).
    pub address_registers: usize,
    /// Auto-modify range of the target machine (the paper's `M`). On
    /// asymmetric machines this is the symmetric radius — see
    /// [`update_range`](Self::update_range) for the exact window.
    pub modify_range: u32,
    /// Full auto-modify window of the target machine. Equals
    /// `[-M, M]` on paper-shaped machines; `[0, 1]` on a
    /// post-increment-only machine.
    pub update_range: UpdateRange,
    /// Per-opcode cycle costs of the target machine.
    pub costs: CostTable,
    /// Modify registers of the target machine (zero on the plain paper
    /// machine). Allocation prices them, so `predicted_cycles` equals
    /// `measured_cycles` on MR-equipped machines too.
    pub modify_registers: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the batch.
    pub elapsed: Duration,
    /// Allocation-cache statistics at the end of the run.
    pub cache: CacheStats,
    /// Per-stage latency summaries for this batch (stages that never
    /// ran are omitted). Render with
    /// [`render_timings_table`](Self::render_timings_table).
    pub timings: Vec<StageTiming>,
}

impl CompilationReport {
    /// All loops across units.
    pub fn loops(&self) -> impl Iterator<Item = &LoopReport> {
        self.units.iter().flat_map(|u| u.loops.iter())
    }

    /// Total number of loops.
    pub fn loop_count(&self) -> usize {
        self.units.iter().map(|u| u.loops.len()).sum()
    }

    /// Number of loops that compiled (and validated, when enabled).
    pub fn succeeded(&self) -> usize {
        self.units.iter().map(UnitReport::succeeded).sum()
    }

    /// Number of failed loops.
    pub fn failed(&self) -> usize {
        self.loop_count() - self.succeeded()
    }

    /// Batch throughput in loops per second (0 when nothing ran).
    pub fn loops_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.loop_count() as f64 / secs
        } else {
            0.0
        }
    }

    /// Machine-readable JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }

    /// The report as a [`Json`] value tree, for callers that embed
    /// reports in larger documents (the serve protocol wraps them in
    /// response envelopes). The `timings` key is present only when
    /// stage timings exist (the serve path strips them per request —
    /// see the protocol's `timings` knob).
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            (
                "machine".to_owned(),
                Json::Obj(vec![
                    (
                        "address_registers".to_owned(),
                        Json::UInt(self.address_registers as u64),
                    ),
                    (
                        "modify_range".to_owned(),
                        Json::UInt(u64::from(self.modify_range)),
                    ),
                    ("update_min".to_owned(), Json::Int(self.update_range.min())),
                    ("update_max".to_owned(), Json::Int(self.update_range.max())),
                    (
                        "modify_registers".to_owned(),
                        Json::UInt(self.modify_registers as u64),
                    ),
                    (
                        "lda_cost".to_owned(),
                        Json::UInt(u64::from(self.costs.lda())),
                    ),
                    (
                        "ldm_cost".to_owned(),
                        Json::UInt(u64::from(self.costs.ldm())),
                    ),
                    (
                        "adda_cost".to_owned(),
                        Json::UInt(u64::from(self.costs.adda())),
                    ),
                ]),
            ),
            ("threads".to_owned(), Json::UInt(self.threads as u64)),
            (
                "elapsed_us".to_owned(),
                Json::UInt(self.elapsed.as_micros() as u64),
            ),
            ("loops".to_owned(), Json::UInt(self.loop_count() as u64)),
            ("succeeded".to_owned(), Json::UInt(self.succeeded() as u64)),
            ("failed".to_owned(), Json::UInt(self.failed() as u64)),
            (
                "loops_per_second".to_owned(),
                Json::Num(self.loops_per_second()),
            ),
            (
                "cache".to_owned(),
                Json::Obj(vec![
                    (
                        "allocation_hits".to_owned(),
                        Json::UInt(self.cache.allocation_hits),
                    ),
                    (
                        "allocation_misses".to_owned(),
                        Json::UInt(self.cache.allocation_misses),
                    ),
                    ("curve_hits".to_owned(), Json::UInt(self.cache.curve_hits)),
                    (
                        "curve_misses".to_owned(),
                        Json::UInt(self.cache.curve_misses),
                    ),
                    ("loaded".to_owned(), Json::UInt(self.cache.loaded)),
                    ("persisted".to_owned(), Json::UInt(self.cache.persisted)),
                    ("hit_rate".to_owned(), Json::Num(self.cache.hit_rate())),
                ]),
            ),
        ];
        if !self.timings.is_empty() {
            fields.push((
                "timings".to_owned(),
                Json::Arr(self.timings.iter().map(stage_timing_json).collect()),
            ));
        }
        fields.push((
            "units".to_owned(),
            Json::Arr(self.units.iter().map(UnitReport::to_json).collect()),
        ));
        Json::Obj(fields)
    }

    /// Aligned per-stage timing table (the `--timings` view). Durations
    /// are microseconds; `total` is exact, quantiles are histogram
    /// estimates. Empty when no stage recorded anything.
    pub fn render_timings_table(&self) -> String {
        if self.timings.is_empty() {
            return String::new();
        }
        let headers = [
            "stage", "calls", "total_us", "p50_us", "p95_us", "p99_us", "max_us",
        ];
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
        let rows: Vec<[String; 7]> = self
            .timings
            .iter()
            .map(|t| {
                [
                    t.stage.to_owned(),
                    t.calls.to_string(),
                    us(t.total_ns),
                    us(t.p50_ns),
                    us(t.p95_ns),
                    us(t.p99_ns),
                    us(t.max_ns),
                ]
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numeric columns, left-align the stage name.
                if i == 0 {
                    out.push_str(cell);
                    out.extend(std::iter::repeat_n(' ', width - cell.len()));
                } else {
                    out.extend(std::iter::repeat_n(' ', width - cell.len()));
                    out.push_str(cell);
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(
            &mut out,
            &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
        );
        write_row(
            &mut out,
            &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        );
        for row in &rows {
            write_row(&mut out, row.as_slice());
        }
        out
    }

    /// Human-readable aligned table rendering.
    pub fn render_table(&self) -> String {
        let headers = [
            "unit", "loop", "arrays", "accesses", "K used", "K~", "cost", "words", "status",
        ];
        let mut rows: Vec<[String; 9]> = Vec::new();
        for unit in &self.units {
            for lr in &unit.loops {
                rows.push([
                    unit.name.clone(),
                    lr.name.clone(),
                    lr.arrays.to_string(),
                    lr.accesses.to_string(),
                    lr.registers_used.to_string(),
                    lr.virtual_registers.to_string(),
                    lr.cost.to_string(),
                    lr.code_words.to_string(),
                    match &lr.failure {
                        None => match lr.measured_cost {
                            Some(_) => "ok (validated)".to_owned(),
                            None => "ok".to_owned(),
                        },
                        Some(failure) => failure.to_string(),
                    },
                ]);
            }
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', width - cell.len()));
            }
            // No trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(
            &mut out,
            &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
        );
        write_row(
            &mut out,
            &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        );
        for row in &rows {
            write_row(&mut out, row.as_slice());
        }
        out.push('\n');
        // Symmetric ranges display as the plain radius, so the footer
        // is byte-identical to the pre-description format on
        // paper-shaped machines; asymmetric windows print in full, and
        // non-unit cost tables append their own clause.
        let costs = if self.costs.is_unit() {
            String::new()
        } else {
            format!(
                ", costs(lda={}, ldm={}, adda={})",
                self.costs.lda(),
                self.costs.ldm(),
                self.costs.adda()
            )
        };
        out.push_str(&format!(
            "{} loop(s) in {} unit(s): {} ok, {} failed  |  K = {}, M = {}, MR = {}{}  |  \
             {:.1} loops/s on {} thread(s)  |  cache: {} hit(s), {} miss(es) ({:.0}% hit rate)\n",
            self.loop_count(),
            self.units.len(),
            self.succeeded(),
            self.failed(),
            self.address_registers,
            self.update_range,
            self.modify_registers,
            costs,
            self.loops_per_second(),
            self.threads,
            self.cache.allocation_hits + self.cache.curve_hits,
            self.cache.allocation_misses + self.cache.curve_misses,
            self.cache.hit_rate() * 100.0
        ));
        out
    }
}

/// One [`StageTiming`] as a JSON object. Durations convert from the
/// recorded nanoseconds to fractional microseconds.
fn stage_timing_json(timing: &StageTiming) -> Json {
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);
    Json::Obj(vec![
        ("stage".to_owned(), Json::str(timing.stage)),
        ("calls".to_owned(), Json::UInt(timing.calls)),
        ("total_us".to_owned(), us(timing.total_ns)),
        ("p50_us".to_owned(), us(timing.p50_ns)),
        ("p95_us".to_owned(), us(timing.p95_ns)),
        ("p99_us".to_owned(), us(timing.p99_ns)),
        ("max_us".to_owned(), us(timing.max_ns)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_loop(name: &str, cost: u64, failure: Option<LoopFailure>) -> LoopReport {
        LoopReport {
            name: name.to_owned(),
            arrays: 2,
            accesses: 5,
            registers_used: 3,
            virtual_registers: 4,
            cost,
            code_words: 7,
            measured_cost: failure.is_none().then_some(cost),
            addresses_checked: 40,
            listing: None,
            failure,
        }
    }

    fn sample_report() -> CompilationReport {
        CompilationReport {
            units: vec![
                UnitReport {
                    name: "a.dsp".to_owned(),
                    loops: vec![sample_loop("loop0", 1, None), sample_loop("loop1", 0, None)],
                    listing: None,
                },
                UnitReport {
                    name: "b.dsp".to_owned(),
                    loops: vec![sample_loop(
                        "loop0",
                        0,
                        Some(LoopFailure::Allocation("too many arrays".into())),
                    )],
                    listing: None,
                },
            ],
            address_registers: 4,
            modify_range: 1,
            update_range: UpdateRange::symmetric(1),
            costs: CostTable::UNIT,
            modify_registers: 0,
            threads: 2,
            elapsed: Duration::from_millis(10),
            cache: CacheStats {
                allocation_hits: 3,
                allocation_misses: 2,
                curve_hits: 1,
                curve_misses: 4,
                allocation_entries: 2,
                curve_entries: 4,
                allocation_evictions: 0,
                curve_evictions: 0,
                loaded: 0,
                persisted: 0,
            },
            timings: vec![StageTiming {
                stage: "parse",
                calls: 2,
                total_ns: 4000,
                max_ns: 3000,
                p50_ns: 1000,
                p95_ns: 3000,
                p99_ns: 3000,
            }],
        }
    }

    #[test]
    fn totals_aggregate_units() {
        let report = sample_report();
        assert_eq!(report.loop_count(), 3);
        assert_eq!(report.succeeded(), 2);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.units[0].total_cost(), 1);
        assert_eq!(report.units[1].failed(), 1);
        assert!(report.loops_per_second() > 0.0);
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_report().to_json();
        for needle in [
            r#""address_registers": 4"#,
            r#""modify_registers": 0"#,
            r#""loops": 3"#,
            r#""hit_rate""#,
            r#""name": "a.dsp""#,
            r#""status": "failed""#,
            r#""failure": "allocation: too many arrays""#,
            r#""measured_cost": null"#,
            r#""predicted_cycles": 1"#,
            r#""measured_cycles": 1"#,
            r#""stage": "parse""#,
            r#""total_us": 4"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn timings_table_renders_per_stage_rows() {
        let table = sample_report().render_timings_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("stage"));
        assert!(lines[0].contains("p99_us"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].starts_with("parse"));
        assert!(lines[2].contains("4.0"), "total 4000 ns = 4.0 us:\n{table}");
        // No timings, no table.
        let mut empty = sample_report();
        empty.timings.clear();
        assert_eq!(empty.render_timings_table(), "");
    }

    #[test]
    fn table_is_aligned_and_summarized() {
        let table = sample_report().render_table();
        assert!(table.contains("unit"));
        assert!(table.contains("ok (validated)"));
        assert!(table.contains("3 loop(s) in 2 unit(s): 2 ok, 1 failed"));
        assert!(table.contains("K = 4, M = 1"));
        // Header separator has the same column count as the header.
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn failure_displays_are_informative() {
        assert_eq!(
            LoopFailure::CostMismatch {
                predicted: 1,
                measured: 2
            }
            .to_string(),
            "cost mismatch: allocator predicted 1, simulator measured 2"
        );
        assert!(LoopFailure::Validation("boom".into())
            .to_string()
            .contains("boom"));
        let checker_rejects = LoopFailure::OracleDisagreement {
            simulator: None,
            checker: Some("delta-coverage: AR0 drifts".into()),
        };
        assert_eq!(
            checker_rejects.to_string(),
            "oracle disagreement: simulator passed but checker rejected: delta-coverage: AR0 drifts"
        );
        let simulator_rejects = LoopFailure::OracleDisagreement {
            simulator: Some("address mismatch".into()),
            checker: None,
        };
        assert_eq!(
            simulator_rejects.to_string(),
            "oracle disagreement: checker passed but simulator rejected: address mismatch"
        );
    }

    #[test]
    fn zero_elapsed_reports_zero_throughput() {
        let mut report = sample_report();
        report.elapsed = Duration::ZERO;
        assert_eq!(report.loops_per_second(), 0.0);
    }
}
