//! Cache snapshots: persist the allocation cache across processes.
//!
//! The two-phase allocation is the expensive step this whole system
//! exists to amortize, and [`CanonicalPattern::fingerprint`] is stable
//! across processes — so there is no reason a warm cache should die
//! with the process that warmed it. This module serializes every
//! resident entry of an [`AllocationCache`] into a dependency-free
//! binary snapshot and restores it entry by entry, turning a server
//! restart from a cold-start event into a warm boot:
//!
//! ```
//! use raco_driver::{persist, Pipeline};
//! use raco_ir::AguSpec;
//!
//! let warm = Pipeline::new(AguSpec::new(4, 1).unwrap());
//! warm.compile_str("unit", "for (i = 0; i < 8; i++) { s += x[i]; }").unwrap();
//!
//! // Snapshot the warm cache, restore it into a "new process" …
//! let bytes = persist::encode(warm.cache());
//! let cold = Pipeline::new(AguSpec::new(4, 1).unwrap());
//! let report = persist::decode_into(cold.cache(), &bytes);
//! assert_eq!(report.skipped, 0);
//! assert!(report.allocations > 0);
//!
//! // … and the restored pipeline's FIRST compile is all cache hits.
//! let first = cold.compile_str("unit", "for (i = 0; i < 8; i++) { s += x[i]; }").unwrap();
//! assert_eq!(first.cache.allocation_misses, 0);
//! assert!(first.cache.allocation_hits > 0);
//! ```
//!
//! ## Snapshot format
//!
//! All integers are little-endian; the layout (also specified in the
//! repository's `PERSISTENCE.md`) is:
//!
//! ```text
//! header   magic  [8]  b"RACOSNP\n"
//!          version u32  SNAPSHOT_VERSION (currently 3)
//!          reserved u32 zero
//! records  tag u8 (0x01 allocation | 0x02 cost curve)
//!          len u32      payload length in bytes
//!          payload[len]
//!          …            (repeated; sorted by record bytes, so equal
//!                        caches encode to identical snapshots)
//! trailer  end u8       0x00
//!          checksum u64 FNV-1a over every preceding byte
//! ```
//!
//! An *allocation record* payload carries the full cache key (the
//! shift-normalized canonical pattern, the update range as two i64
//! bounds, granted registers, and optimizer options) and the full
//! [`Allocation`] value (distance model, cost, both phase reports with
//! their covers). A *curve record* carries the curve-class key and the
//! `Vec<u32>` cost curve.
//!
//! ## Versioning and corruption handling
//!
//! Decoding **never panics** and rejects damage at the smallest
//! trustworthy granularity:
//!
//! * wrong magic, unsupported version, or a checksum mismatch poison
//!   the whole file (with a checksum failure no individual record can
//!   be trusted), producing a [`LoadReport`] with a warning and
//!   nothing loaded — callers keep running with a cold cache;
//! * a record that is structurally corrupt but correctly framed
//!   (undecodable payload, an invalid path cover, a cost that does not
//!   match its own cover) is skipped and counted, and loading
//!   continues with the next record;
//! * a record whose declared length overruns the file ends the walk
//!   (nothing after it can be framed), keeping everything loaded so
//!   far.
//!
//! Version bumps are compatibility breaks by design: the snapshot is a
//! cache, so the correct reaction to an old snapshot is to recompute,
//! not to migrate. Loaders must refuse versions they do not know.
//!
//! [`CanonicalPattern::fingerprint`]: raco_ir::CanonicalPattern::fingerprint

use std::fmt;
use std::io;
use std::path::{Path as FsPath, PathBuf};
use std::sync::Arc;

use raco_core::{
    Allocation, CostModel, MergeRecord, MergeStrategy, OptimizerOptions, Phase1Outcome,
    Phase1Report, Phase2Report,
};
use raco_graph::{BbOptions, DistanceModel, Path, PathCover};
use raco_ir::{CanonicalPattern, UpdateRange, MAX_INSTRUCTION_COST};

use crate::cache::{AllocationCache, AllocationKey, CurveKey};

/// The snapshot file magic (first eight bytes).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RACOSNP\n";

/// The snapshot format version this build writes and accepts.
///
/// Version history:
///
/// * **1** — initial format.
/// * **2** — the options sub-encoding gained the cost model's
///   modify-register count: allocation now depends on how many modify
///   registers the machine has (the allocator prices deltas they can
///   absorb at zero cycles), so version-1 entries — implicitly priced
///   at zero modify registers without saying so — must not warm-hit a
///   version-2 cache. Old snapshots are rejected cleanly and the cache
///   re-warms.
/// * **3** — machine descriptions: the `M` radius (one u32) in both
///   record kinds became the full asymmetric update range (two i64
///   bounds), and the options sub-encoding gained the cost model's
///   ADDA cost. A v2 snapshot cannot express `[0, 1]`-style ranges or
///   non-unit instruction costs, so its entries — implicitly symmetric
///   and unit-cost — must not warm-hit a v3 cache keyed by the full
///   description. Old snapshots are rejected cleanly and the cache
///   re-warms.
pub const SNAPSHOT_VERSION: u32 = 3;

const TAG_END: u8 = 0x00;
const TAG_ALLOCATION: u8 = 0x01;
const TAG_CURVE: u8 = 0x02;

/// Header (magic + version + reserved) plus trailer (end marker +
/// checksum): the size of the smallest well-formed snapshot.
const MIN_SNAPSHOT: usize = 8 + 4 + 4 + 1 + 8;

/// How many per-record warnings a [`LoadReport`] keeps verbatim before
/// collapsing the rest into one summary line.
const MAX_WARNINGS: usize = 8;

/// 64-bit FNV-1a over `bytes` — the snapshot trailer's whole-file
/// checksum. Exposed so external tooling (and the corruption tests)
/// can seal or verify snapshots without linking a hash library.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A snapshot file could not be read or written.
///
/// Format-level damage is *not* an error: [`load`] reports it through
/// [`LoadReport`] (skipped entries + warnings) so a service can always
/// boot, warm or cold.
#[derive(Debug)]
pub struct PersistError {
    /// The offending snapshot path.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub error: io::Error,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.error)
    }
}

impl std::error::Error for PersistError {}

/// What a snapshot save wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Allocation entries written.
    pub allocations: usize,
    /// Cost-curve entries written.
    pub curves: usize,
    /// Total snapshot size in bytes.
    pub bytes: usize,
}

impl SaveReport {
    /// Total entries written.
    pub fn entries(&self) -> usize {
        self.allocations + self.curves
    }
}

impl fmt::Display for SaveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} allocation(s) + {} curve(s), {} bytes",
            self.allocations, self.curves, self.bytes
        )
    }
}

/// What a snapshot load restored — and what it refused.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Allocation entries restored.
    pub allocations: usize,
    /// Cost-curve entries restored.
    pub curves: usize,
    /// Entries already resident (the in-memory value wins).
    pub duplicates: usize,
    /// Records rejected as corrupt or unrecognized.
    pub skipped: usize,
    /// One human-readable line per rejection (capped at a handful,
    /// then summarized).
    pub warnings: Vec<String>,
}

impl LoadReport {
    /// Total entries restored into the cache.
    pub fn loaded(&self) -> usize {
        self.allocations + self.curves
    }

    fn warn(&mut self, message: impl Into<String>) {
        if self.warnings.len() < MAX_WARNINGS {
            self.warnings.push(message.into());
        } else if self.warnings.len() == MAX_WARNINGS {
            self.warnings.push("… further warnings suppressed".into());
        }
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} allocation(s) + {} curve(s) loaded",
            self.allocations, self.curves
        )?;
        if self.duplicates > 0 {
            write!(f, ", {} duplicate(s)", self.duplicates)?;
        }
        if self.skipped > 0 {
            write!(f, ", {} skipped", self.skipped)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Counts and indices are stored as u32; anything larger than this is
/// not a plausible cache entry (a pattern with 4 billion accesses).
fn put_count(buf: &mut Vec<u8>, v: usize) {
    put_u32(
        buf,
        u32::try_from(v).expect("cache entries are far below u32 counts"),
    );
}

fn put_offsets(buf: &mut Vec<u8>, offsets: &[i64], stride: i64) {
    put_count(buf, offsets.len());
    for &o in offsets {
        put_i64(buf, o);
    }
    put_i64(buf, stride);
}

fn put_range(buf: &mut Vec<u8>, range: UpdateRange) {
    put_i64(buf, range.min());
    put_i64(buf, range.max());
}

fn put_options(buf: &mut Vec<u8>, options: &OptimizerOptions) {
    buf.push(u8::from(options.cost_model.includes_wrap()));
    put_count(buf, options.cost_model.modify_registers());
    put_u32(buf, options.cost_model.adda_cost());
    put_u64(buf, options.bb.node_limit);
    buf.push(u8::from(options.bb.memoize));
    match options.strategy {
        MergeStrategy::GreedyMinCost => buf.push(0),
        MergeStrategy::Random { seed } => {
            buf.push(1);
            put_u64(buf, seed);
        }
        MergeStrategy::FirstPair => buf.push(2),
        MergeStrategy::WorstCost => buf.push(3),
        // A strategy this codec does not know (the enum is
        // non-exhaustive) encodes as a tag the decoder rejects: the
        // entry degrades to one skipped record instead of silently
        // loading under the wrong strategy. Adding a real tag for a
        // new variant is a SNAPSHOT_VERSION bump.
        _ => buf.push(u8::MAX),
    }
}

fn put_cover(buf: &mut Vec<u8>, cover: &PathCover) {
    put_count(buf, cover.accesses());
    put_count(buf, cover.paths().len());
    for path in cover.paths() {
        put_count(buf, path.len());
        for &index in path.indices() {
            put_count(buf, index);
        }
    }
}

fn encode_allocation_record(key: &AllocationKey, value: &Allocation) -> Vec<u8> {
    let mut buf = Vec::new();
    // Key.
    put_offsets(&mut buf, key.canonical.offsets(), key.canonical.stride());
    put_range(&mut buf, key.range);
    put_count(&mut buf, key.registers);
    put_options(&mut buf, &key.options);
    // Value: distance model …
    put_offsets(
        &mut buf,
        value.distance_model().offsets(),
        value.distance_model().stride(),
    );
    put_range(&mut buf, value.distance_model().range());
    put_u32(&mut buf, value.cost());
    // … Phase 1 …
    let phase1 = value.phase1();
    put_cover(&mut buf, phase1.cover());
    buf.push(match phase1.outcome() {
        Phase1Outcome::ZeroCost {
            proved_minimal: false,
        } => 0,
        Phase1Outcome::ZeroCost {
            proved_minimal: true,
        } => 1,
        Phase1Outcome::Relaxed => 2,
        // See the merge-strategy fallback above: unknown outcomes
        // round-trip to a rejected (skipped) record by design.
        _ => u8::MAX,
    });
    put_count(&mut buf, phase1.lower_bound());
    put_u64(&mut buf, phase1.nodes());
    // … Phase 2.
    let phase2 = value.phase2();
    put_cover(&mut buf, phase2.cover());
    put_count(&mut buf, phase2.records().len());
    for record in phase2.records() {
        put_count(&mut buf, record.paths_before);
        put_count(&mut buf, record.merged_lengths.0);
        put_count(&mut buf, record.merged_lengths.1);
        put_u32(&mut buf, record.merged_path_cost);
        put_u32(&mut buf, record.total_cost_after);
    }
    put_count(&mut buf, phase2.cost_trajectory().len());
    for &(registers, cost) in phase2.cost_trajectory() {
        put_count(&mut buf, registers);
        put_u32(&mut buf, cost);
    }
    buf
}

fn encode_curve_record(key: &CurveKey, value: &[u32]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_offsets(&mut buf, key.cost_class.offsets(), key.cost_class.stride());
    put_range(&mut buf, key.range);
    put_count(&mut buf, key.k_max);
    put_options(&mut buf, &key.options);
    put_count(&mut buf, value.len());
    for &cost in value {
        put_u32(&mut buf, cost);
    }
    buf
}

/// Serializes every resident cache entry into a snapshot byte buffer.
///
/// Records are sorted, so two caches with equal contents encode to
/// byte-identical snapshots regardless of insertion order — which is
/// what makes `encode(load(encode(x)))` reproducible in tests.
pub fn encode(cache: &AllocationCache) -> Vec<u8> {
    encode_with_report(cache).0
}

/// [`encode`], also returning the [`SaveReport`] describing the bytes.
/// One export feeds both, so the counts always describe the snapshot
/// that was actually written — even while other threads keep inserting.
fn encode_with_report(cache: &AllocationCache) -> (Vec<u8>, SaveReport) {
    let (allocations, curves) = cache.export();
    let mut records: Vec<(u8, Vec<u8>)> = Vec::with_capacity(allocations.len() + curves.len());
    for (key, value) in &allocations {
        records.push((TAG_ALLOCATION, encode_allocation_record(key, value)));
    }
    for (key, value) in &curves {
        records.push((TAG_CURVE, encode_curve_record(key, value)));
    }
    records.sort();

    let mut buf = Vec::new();
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut buf, SNAPSHOT_VERSION);
    put_u32(&mut buf, 0); // reserved
    for (tag, payload) in records {
        buf.push(tag);
        put_count(&mut buf, payload.len());
        buf.extend_from_slice(&payload);
    }
    buf.push(TAG_END);
    let sum = checksum(&buf);
    put_u64(&mut buf, sum);
    let report = SaveReport {
        allocations: allocations.len(),
        curves: curves.len(),
        bytes: buf.len(),
    };
    (buf, report)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Cursor over a record payload; every read is bounds-checked, so a
/// hostile payload can only produce `Err`, never a panic or a huge
/// allocation (element counts are validated against remaining bytes
/// before anything is reserved).
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type Decoded<T> = Result<T, &'static str>;

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Decoded<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err("payload truncated");
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Decoded<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Decoded<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Decoded<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Decoded<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A u32 element count, sanity-checked against the bytes that are
    /// actually left (`min_elem_bytes` per element).
    fn count(&mut self, min_elem_bytes: usize) -> Decoded<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.bytes.len() - self.pos {
            return Err("element count overruns payload");
        }
        Ok(n)
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn read_offsets(r: &mut Reader<'_>) -> Decoded<(Vec<i64>, i64)> {
    let n = r.count(8)?;
    if n == 0 {
        return Err("empty access pattern");
    }
    let mut offsets = Vec::with_capacity(n);
    for _ in 0..n {
        offsets.push(r.i64()?);
    }
    let stride = r.i64()?;
    Ok((offsets, stride))
}

fn read_canonical(r: &mut Reader<'_>) -> Decoded<CanonicalPattern> {
    let (offsets, stride) = read_offsets(r)?;
    if offsets[0] != 0 {
        return Err("canonical pattern does not start at zero");
    }
    Ok(CanonicalPattern::from_offsets(&offsets, stride))
}

fn read_range(r: &mut Reader<'_>) -> Decoded<UpdateRange> {
    let min = r.i64()?;
    let max = r.i64()?;
    UpdateRange::new(min, max).map_err(|_| "invalid update range")
}

fn read_options(r: &mut Reader<'_>) -> Decoded<OptimizerOptions> {
    let cost_model = match r.u8()? {
        0 => CostModel::paper_literal(),
        1 => CostModel::steady_state(),
        _ => return Err("unknown cost model"),
    };
    let cost_model = cost_model.with_modify_registers(r.u32()? as usize);
    let adda_cost = r.u32()?;
    if adda_cost == 0 || adda_cost > MAX_INSTRUCTION_COST {
        return Err("invalid ADDA cost");
    }
    let cost_model = cost_model.with_adda_cost(adda_cost);
    let node_limit = r.u64()?;
    let memoize = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err("invalid memoize flag"),
    };
    let strategy = match r.u8()? {
        0 => MergeStrategy::GreedyMinCost,
        1 => MergeStrategy::Random { seed: r.u64()? },
        2 => MergeStrategy::FirstPair,
        3 => MergeStrategy::WorstCost,
        _ => return Err("unknown merge strategy"),
    };
    Ok(OptimizerOptions {
        cost_model,
        bb: BbOptions {
            node_limit,
            memoize,
        },
        strategy,
    })
}

fn read_cover(r: &mut Reader<'_>) -> Decoded<PathCover> {
    let accesses = r.count(0)?;
    let path_count = r.count(4)?;
    let mut paths = Vec::with_capacity(path_count);
    for _ in 0..path_count {
        let len = r.count(4)?;
        let mut indices = Vec::with_capacity(len);
        for _ in 0..len {
            indices.push(r.u32()? as usize);
        }
        paths.push(Path::new(indices).map_err(|_| "invalid path")?);
    }
    PathCover::new(paths, accesses).map_err(|_| "paths do not partition the accesses")
}

fn decode_allocation_record(payload: &[u8]) -> Decoded<(AllocationKey, Allocation)> {
    let r = &mut Reader::new(payload);
    let canonical = read_canonical(r)?;
    let range = read_range(r)?;
    let registers = r.u32()? as usize;
    let options = read_options(r)?;

    let (offsets, stride) = read_offsets(r)?;
    let dm_range = read_range(r)?;
    let dm = DistanceModel::from_offsets_range(&offsets, stride, dm_range);
    let cost = r.u32()?;

    let phase1_cover = read_cover(r)?;
    let outcome = match r.u8()? {
        0 => Phase1Outcome::ZeroCost {
            proved_minimal: false,
        },
        1 => Phase1Outcome::ZeroCost {
            proved_minimal: true,
        },
        2 => Phase1Outcome::Relaxed,
        _ => return Err("unknown phase-1 outcome"),
    };
    let lower_bound = r.u32()? as usize;
    let nodes = r.u64()?;
    let phase1 = Phase1Report::from_parts(phase1_cover, outcome, lower_bound, nodes);

    let phase2_cover = read_cover(r)?;
    let record_count = r.count(20)?;
    let mut records = Vec::with_capacity(record_count);
    for _ in 0..record_count {
        records.push(MergeRecord {
            paths_before: r.u32()? as usize,
            merged_lengths: (r.u32()? as usize, r.u32()? as usize),
            merged_path_cost: r.u32()?,
            total_cost_after: r.u32()?,
        });
    }
    let trajectory_count = r.count(8)?;
    let mut cost_trajectory = Vec::with_capacity(trajectory_count);
    for _ in 0..trajectory_count {
        cost_trajectory.push((r.u32()? as usize, r.u32()?));
    }
    let phase2 = Phase2Report::from_parts(phase2_cover, records, cost_trajectory);
    if !r.finished() {
        return Err("trailing bytes after allocation record");
    }

    // Cross-field validation: the covers must describe exactly the
    // distance model's accesses, the key must agree with the model,
    // and the stored cost must be reproducible from the final cover —
    // a snapshot that lies about any of these is rejected here rather
    // than poisoning downstream codegen.
    if phase1.cover().accesses() != dm.len() || phase2.cover().accesses() != dm.len() {
        return Err("cover does not match the distance model");
    }
    if registers == 0 || phase2.cover().register_count() > registers {
        return Err("final cover exceeds the key's register grant");
    }
    if dm.range() != range {
        return Err("distance model disagrees with the cache key");
    }
    if CanonicalPattern::from_offsets(&offsets, stride) != canonical {
        return Err("distance model does not canonicalize to the cache key");
    }
    if options.cost_model.cover_cost(phase2.cover(), &dm) != cost {
        return Err("stored cost does not match the cover");
    }

    let key = AllocationKey {
        canonical,
        range,
        registers,
        options,
    };
    Ok((key, Allocation::from_parts(dm, cost, phase1, phase2)))
}

fn decode_curve_record(payload: &[u8]) -> Decoded<(CurveKey, Vec<u32>)> {
    let r = &mut Reader::new(payload);
    let cost_class = read_canonical(r)?;
    let range = read_range(r)?;
    let k_max = r.u32()? as usize;
    let options = read_options(r)?;
    let len = r.count(4)?;
    if len != k_max {
        return Err("curve length does not match its k_max");
    }
    let mut curve = Vec::with_capacity(len);
    for _ in 0..len {
        curve.push(r.u32()?);
    }
    if !r.finished() {
        return Err("trailing bytes after curve record");
    }
    // Symmetric machines key curves by the sign-normalized cost class;
    // asymmetric machines key by the exact canonical form (mirror
    // sharing is unsound there), which need not be sign-normalized.
    if range.is_symmetric() && cost_class.cost_class() != cost_class {
        return Err("curve key is not sign-normalized");
    }
    Ok((
        CurveKey {
            cost_class,
            range,
            k_max,
            options,
        },
        curve,
    ))
}

/// Restores snapshot `bytes` into `cache`, entry by entry.
///
/// Never panics and never fails outright: structural damage is
/// reported through the returned [`LoadReport`] (see the
/// [module docs](self) for the exact rejection granularity). Restored
/// entries bump [`CacheStats::loaded`](crate::CacheStats); entries
/// whose key is already resident are counted as duplicates and the
/// in-memory value is kept.
pub fn decode_into(cache: &AllocationCache, bytes: &[u8]) -> LoadReport {
    let mut report = LoadReport::default();
    if bytes.len() < MIN_SNAPSHOT {
        report.skipped += 1;
        report.warn(format!(
            "snapshot too short ({} bytes) — not written by `{}`?",
            bytes.len(),
            env!("CARGO_PKG_NAME"),
        ));
        return report;
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        report.skipped += 1;
        report.warn("bad magic — not a raco cache snapshot");
        return report;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        report.skipped += 1;
        report.warn(format!(
            "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION}); \
             ignoring the snapshot — the cache will re-warm"
        ));
        return report;
    }
    let declared = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let actual = checksum(&bytes[..bytes.len() - 8]);
    if declared != actual {
        report.skipped += 1;
        report.warn(format!(
            "checksum mismatch (stored {declared:#018x}, computed {actual:#018x}); \
             rejecting every entry"
        ));
        return report;
    }

    // Walk the record region: bytes between the header and the
    // trailer. The end marker lives outside this region, so running
    // out of bytes exactly at a record boundary is the normal exit.
    let mut r = Reader::new(&bytes[16..bytes.len() - 9]);
    while let Ok(tag) = r.u8() {
        let Ok(len) = r.u32() else {
            report.skipped += 1;
            report.warn("record header truncated; stopping the walk");
            break;
        };
        let Ok(payload) = r.take(len as usize) else {
            report.skipped += 1;
            report.warn("truncated record overruns the snapshot; stopping the walk");
            break;
        };
        match tag {
            TAG_ALLOCATION => match decode_allocation_record(payload) {
                Ok((key, value)) => {
                    if cache.install_allocation(key, Arc::new(value)) {
                        report.allocations += 1;
                    } else {
                        report.duplicates += 1;
                    }
                }
                Err(reason) => {
                    report.skipped += 1;
                    report.warn(format!("allocation record rejected: {reason}"));
                }
            },
            TAG_CURVE => match decode_curve_record(payload) {
                Ok((key, value)) => {
                    if cache.install_curve(key, Arc::new(value)) {
                        report.curves += 1;
                    } else {
                        report.duplicates += 1;
                    }
                }
                Err(reason) => {
                    report.skipped += 1;
                    report.warn(format!("curve record rejected: {reason}"));
                }
            },
            other => {
                // Unknown record kinds are skippable by construction
                // (they are length-prefixed like every other record).
                report.skipped += 1;
                report.warn(format!("unknown record tag {other:#04x} skipped"));
            }
        }
    }
    report
}

/// Saves every resident cache entry to `path` (atomically: written to
/// a sibling temp file, then renamed). Updates
/// [`CacheStats::persisted`](crate::CacheStats).
///
/// # Errors
///
/// Returns [`PersistError`] when the file cannot be written.
pub fn save(cache: &AllocationCache, path: &FsPath) -> Result<SaveReport, PersistError> {
    let (bytes, report) = encode_with_report(cache);
    let wrap = |error: io::Error| PersistError {
        path: path.to_path_buf(),
        error,
    };
    // Rename-into-place so a crash mid-write can never leave a torn
    // snapshot where the next boot will look for a good one. The temp
    // name is unique per save (pid + counter), so concurrent saves to
    // one path cannot interleave into a single temp file — last rename
    // wins with a complete snapshot either way.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    std::fs::write(&tmp, &bytes).map_err(wrap)?;
    if let Err(error) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(wrap(error));
    }
    cache.note_persisted(report.entries() as u64);
    Ok(report)
}

/// Loads the snapshot at `path` into `cache`.
///
/// # Errors
///
/// Returns [`PersistError`] when the file cannot be read; format-level
/// damage is reported through the [`LoadReport`] instead.
pub fn load(cache: &AllocationCache, path: &FsPath) -> Result<LoadReport, PersistError> {
    let bytes = std::fs::read(path).map_err(|error| PersistError {
        path: path.to_path_buf(),
        error,
    })?;
    Ok(decode_into(cache, &bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_core::Optimizer;
    use raco_ir::{AccessPattern, AguSpec};

    fn sym(m: u32) -> UpdateRange {
        UpdateRange::symmetric(m)
    }

    /// A cache warmed with a few real allocations and curves.
    fn warm_cache() -> AllocationCache {
        let cache = AllocationCache::new();
        let options = OptimizerOptions::default();
        let optimizer = Optimizer::new(AguSpec::new(2, 1).unwrap());
        for offsets in [&[1i64, 0, 2, -1][..], &[0, 5, 10][..], &[0, -3][..]] {
            let pattern = AccessPattern::from_offsets(offsets, 1);
            let canonical = CanonicalPattern::of(&pattern);
            let _ = cache.allocation(&canonical, sym(1), 2, &options, || {
                optimizer.allocate(&pattern)
            });
            let _ = cache.cost_curve(&canonical, sym(1), 4, &options, || {
                optimizer.cost_curve(&pattern, 4)
            });
        }
        cache
    }

    #[test]
    fn round_trip_restores_every_entry() {
        let cache = warm_cache();
        let bytes = encode(&cache);
        let restored = AllocationCache::new();
        let report = decode_into(&restored, &bytes);
        assert_eq!(report.skipped, 0, "{:?}", report.warnings);
        assert_eq!(report.allocations, 3);
        assert_eq!(report.curves, 3);
        assert_eq!(report.loaded(), 6);
        assert_eq!(restored.stats().loaded, 6);
        // Entry-for-entry equality: re-encoding the restored cache
        // reproduces the snapshot byte for byte (records are sorted).
        assert_eq!(encode(&restored), bytes);
    }

    #[test]
    fn loaded_entries_hit_without_recomputation() {
        let cache = warm_cache();
        let restored = AllocationCache::new();
        decode_into(&restored, &encode(&cache));
        let options = OptimizerOptions::default();
        let canonical = CanonicalPattern::from_offsets(&[1, 0, 2, -1], 1);
        let hit = restored.allocation(&canonical, sym(1), 2, &options, || {
            panic!("loaded entry must hit")
        });
        let original = cache.allocation(&canonical, sym(1), 2, &options, || {
            panic!("warm entry must hit")
        });
        assert_eq!(*hit, *original);
        assert_eq!(restored.stats().allocation_hits, 1);
        assert_eq!(restored.stats().allocation_misses, 0);
    }

    #[test]
    fn duplicates_keep_the_resident_value() {
        let cache = warm_cache();
        let bytes = encode(&cache);
        let report = decode_into(&cache, &bytes);
        assert_eq!(report.loaded(), 0);
        assert_eq!(report.duplicates, 6);
        assert_eq!(cache.stats().loaded, 0);
    }

    #[test]
    fn bad_magic_version_and_checksum_are_rejected_whole() {
        let restored = AllocationCache::new();
        let good = encode(&warm_cache());

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        let report = decode_into(&restored, &bad_magic);
        assert_eq!(report.loaded(), 0);
        assert!(report.warnings[0].contains("bad magic"));

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        let report = decode_into(&restored, &bad_version);
        assert_eq!(report.loaded(), 0);
        assert!(report.warnings[0].contains("version 99"));

        let mut bad_sum = good.clone();
        let flip = bad_sum.len() / 2;
        bad_sum[flip] ^= 0x01;
        let report = decode_into(&restored, &bad_sum);
        assert_eq!(report.loaded(), 0);
        assert!(report.warnings[0].contains("checksum mismatch"));

        assert_eq!(restored.stats().loaded, 0);
        assert_eq!(decode_into(&restored, b"tiny").warnings.len(), 1);
    }

    #[test]
    fn version_one_snapshots_are_rejected_cleanly() {
        // Regression pin for the v1 → v2 bump (allocation now depends
        // on the cost model's modify-register count, which v1 never
        // encoded): a structurally flawless version-1 snapshot must be
        // rejected whole — one warning, nothing loaded, no panic — so
        // a v2 cache can never warm-hit entries priced for the wrong
        // machine.
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut buf, 1); // the previous SNAPSHOT_VERSION
        put_u32(&mut buf, 0);
        buf.push(TAG_END);
        let sum = checksum(&buf);
        put_u64(&mut buf, sum);

        let restored = AllocationCache::new();
        let report = decode_into(&restored, &buf);
        assert_eq!(report.loaded(), 0);
        assert_eq!(report.skipped, 1);
        assert!(
            report.warnings[0].contains("version 1"),
            "{:?}",
            report.warnings
        );
        assert!(report.warnings[0].contains("re-warm"));
        assert_eq!(restored.stats().loaded, 0);
    }

    #[test]
    fn version_two_snapshots_are_rejected_cleanly() {
        // Regression pin for the v2 → v3 bump (cache keys grew from a
        // symmetric M radius to a full update range, and options now
        // carry the ADDA cost): a structurally flawless version-2
        // snapshot must be rejected whole — one warning, nothing
        // loaded, no panic — so a v3 cache can never warm-hit entries
        // keyed by an incomplete machine description.
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut buf, 2); // the previous SNAPSHOT_VERSION
        put_u32(&mut buf, 0);
        buf.push(TAG_END);
        let sum = checksum(&buf);
        put_u64(&mut buf, sum);

        let restored = AllocationCache::new();
        let report = decode_into(&restored, &buf);
        assert_eq!(report.loaded(), 0);
        assert_eq!(report.skipped, 1);
        assert!(
            report.warnings[0].contains("version 2"),
            "{:?}",
            report.warnings
        );
        assert!(report.warnings[0].contains("re-warm"));
        assert_eq!(restored.stats().loaded, 0);
    }

    #[test]
    fn asymmetric_range_entries_round_trip() {
        // A bwdsp-style post-increment machine: the [0, 1] range and
        // the machine-forced ADDA cost must survive the snapshot and
        // answer only to the exactly-matching key.
        let agu = raco_ir::AguSpec::bwdsp_like();
        let config = crate::PipelineConfig::new(agu);
        let options = config.effective_options();
        let optimizer = Optimizer::with_options(agu, options);
        let pattern = AccessPattern::from_offsets(&[0, 2, 5], 1);
        let canonical = CanonicalPattern::of(&pattern);
        let range = agu.update_range();
        let cache = AllocationCache::new();
        let _ = cache.allocation(&canonical, range, 2, &options, || {
            optimizer.allocate_with_registers(&pattern, 2)
        });
        let _ = cache.cost_curve(&canonical, range, 4, &options, || {
            optimizer.cost_curve(&pattern, 4)
        });

        let bytes = encode(&cache);
        let restored = AllocationCache::new();
        let report = decode_into(&restored, &bytes);
        assert_eq!(report.skipped, 0, "{:?}", report.warnings);
        assert_eq!(report.loaded(), 2);
        assert_eq!(encode(&restored), bytes);
        let _ = restored.allocation(&canonical, range, 2, &options, || {
            panic!("restored asymmetric entry must hit")
        });
        // The symmetric M = 1 key is a different machine: clean miss.
        let _ = restored.allocation(&canonical, sym(1), 2, &options, || {
            optimizer.allocate_with_registers(&pattern, 2)
        });
        assert_eq!(restored.stats().allocation_hits, 1);
        assert_eq!(restored.stats().allocation_misses, 1);
    }

    #[test]
    fn options_round_trip_the_modify_register_count() {
        // Two caches whose entries differ only in the cost model's
        // modify-register count must encode to different snapshots and
        // restore to distinct keys.
        let options_mr = OptimizerOptions {
            cost_model: CostModel::steady_state().with_modify_registers(2),
            ..OptimizerOptions::default()
        };
        let optimizer = Optimizer::with_options(
            raco_ir::AguSpec::new(2, 1)
                .unwrap()
                .with_modify_registers(2),
            options_mr,
        );
        let pattern = AccessPattern::from_offsets(&[0, 10, 20, 30], 1);
        let canonical = CanonicalPattern::of(&pattern);
        let cache = AllocationCache::new();
        let _ = cache.allocation(&canonical, sym(1), 2, &options_mr, || {
            optimizer.allocate(&pattern)
        });

        let restored = AllocationCache::new();
        let report = decode_into(&restored, &encode(&cache));
        assert_eq!(report.skipped, 0, "{:?}", report.warnings);
        assert_eq!(report.allocations, 1);
        // The restored entry answers only to the MR-priced key …
        let hit = restored.allocation(&canonical, sym(1), 2, &options_mr, || {
            panic!("restored MR entry must hit")
        });
        assert_eq!(hit.cost(), optimizer.allocate(&pattern).cost());
        // … while the plain-machine key recomputes from scratch.
        let plain = OptimizerOptions::default();
        let miss_marker = Optimizer::with_options(raco_ir::AguSpec::new(2, 1).unwrap(), plain);
        let _ = restored.allocation(&canonical, sym(1), 2, &plain, || {
            miss_marker.allocate(&pattern)
        });
        assert_eq!(restored.stats().allocation_misses, 1);
        assert_eq!(restored.stats().allocation_entries, 2);
    }

    #[test]
    fn corrupt_records_are_skipped_individually() {
        // Hand-assemble a snapshot whose middle record is garbage but
        // whose framing and checksum are valid: the two good records
        // must still load.
        let cache = warm_cache();
        let (allocations, curves) = cache.export();
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut buf, SNAPSHOT_VERSION);
        put_u32(&mut buf, 0);
        let good_alloc = encode_allocation_record(&allocations[0].0, &allocations[0].1);
        buf.push(TAG_ALLOCATION);
        put_count(&mut buf, good_alloc.len());
        buf.extend_from_slice(&good_alloc);
        buf.push(TAG_ALLOCATION);
        put_count(&mut buf, 5);
        buf.extend_from_slice(b"junk!");
        let good_curve = encode_curve_record(&curves[0].0, &curves[0].1);
        buf.push(TAG_CURVE);
        put_count(&mut buf, good_curve.len());
        buf.extend_from_slice(&good_curve);
        buf.push(TAG_END);
        let sum = checksum(&buf);
        put_u64(&mut buf, sum);

        let restored = AllocationCache::new();
        let report = decode_into(&restored, &buf);
        assert_eq!(report.allocations, 1);
        assert_eq!(report.curves, 1);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("allocation record rejected"));
    }

    #[test]
    fn records_exceeding_their_register_grant_are_rejected() {
        // A checksummed snapshot whose record claims fewer granted
        // registers than its own final cover uses would hand codegen
        // an over-budget allocation on a warm hit; the decoder must
        // refuse it during load, not downstream.
        let cache = warm_cache();
        let (allocations, _) = cache.export();
        let (key, value) = allocations
            .iter()
            .find(|(_, v)| v.cover().register_count() >= 2)
            .expect("fixture has a multi-register allocation");
        for registers in [0, value.cover().register_count() - 1] {
            let mut lying_key = key.clone();
            lying_key.registers = registers;
            let record = encode_allocation_record(&lying_key, value);
            let mut buf = Vec::new();
            buf.extend_from_slice(&SNAPSHOT_MAGIC);
            put_u32(&mut buf, SNAPSHOT_VERSION);
            put_u32(&mut buf, 0);
            buf.push(TAG_ALLOCATION);
            put_count(&mut buf, record.len());
            buf.extend_from_slice(&record);
            buf.push(TAG_END);
            let sum = checksum(&buf);
            put_u64(&mut buf, sum);

            let restored = AllocationCache::new();
            let report = decode_into(&restored, &buf);
            assert_eq!(report.loaded(), 0, "granted {registers}: {report:?}");
            assert_eq!(report.skipped, 1);
            assert!(report.warnings[0].contains("register grant"));
        }
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let cache = warm_cache();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("raco-persist-test-{}.snap", std::process::id()));
        let saved = save(&cache, &path).unwrap();
        assert_eq!(saved.entries(), 6);
        assert!(saved.bytes > MIN_SNAPSHOT);
        assert_eq!(cache.stats().persisted, 6);

        let restored = AllocationCache::new();
        let report = load(&restored, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.loaded(), 6);
        assert_eq!(encode(&restored), encode(&cache));

        let missing = load(&restored, &dir.join("raco-no-such-snapshot"));
        assert!(missing.is_err());
        assert!(missing.unwrap_err().to_string().contains("raco-no-such"));
    }

    #[test]
    fn reports_render_readably() {
        let save = SaveReport {
            allocations: 2,
            curves: 3,
            bytes: 640,
        };
        assert_eq!(save.to_string(), "2 allocation(s) + 3 curve(s), 640 bytes");
        let mut load = LoadReport {
            allocations: 2,
            curves: 3,
            ..LoadReport::default()
        };
        assert_eq!(load.to_string(), "2 allocation(s) + 3 curve(s) loaded");
        load.duplicates = 1;
        load.skipped = 4;
        assert_eq!(
            load.to_string(),
            "2 allocation(s) + 3 curve(s) loaded, 1 duplicate(s), 4 skipped"
        );
    }
}
