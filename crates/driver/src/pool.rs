//! A small scoped worker pool (rayon-style fan-out over std threads).
//!
//! The pipeline's unit of work is one loop; loops are independent
//! allocation problems, so batch compilation is embarrassingly
//! parallel. The pool hands out work items through an atomic cursor
//! (work stealing degenerates to work *taking* — items are uniform
//! enough that a shared cursor beats per-thread deques) and preserves
//! input order in the result vector.
//!
//! Implemented on `std::thread::scope` so borrowed work items need no
//! `'static` bound and the crate stays dependency-free.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Degree of parallelism for a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available CPU (the default).
    #[default]
    Auto,
    /// Exactly this many workers (clamped to at least one).
    Fixed(usize),
    /// No worker threads: run on the calling thread. Useful for
    /// debugging and for deterministic profiling.
    Sequential,
}

impl Parallelism {
    /// Resolves to a concrete worker count for `items` work items.
    pub fn resolve(self, items: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        };
        let workers = match self {
            Parallelism::Auto => hw(),
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Sequential => 1,
        };
        workers.min(items.max(1))
    }
}

/// Maps `f` over `items` on `parallelism` workers, preserving order.
///
/// `f` must be `Sync` because multiple workers call it concurrently;
/// results are written into per-index slots, so no ordering games are
/// needed. Panics in `f` propagate to the caller (the scope joins all
/// workers first).
pub fn map_parallel<T, R, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = parallelism.resolve(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<R>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = f(index, &items[index]);
                // Each index is claimed exactly once, so the lock is
                // uncontended; it exists to satisfy aliasing rules.
                **slot_refs[index].lock().expect("slot lock poisoned") = Some(result);
            });
        }
    });

    drop(slot_refs);
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let doubled = map_parallel(Parallelism::Fixed(8), &items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<i64> = (-50..50).collect();
        let seq = map_parallel(Parallelism::Sequential, &items, |i, &x| x + i as i64);
        let par = map_parallel(Parallelism::Fixed(4), &items, |i, &x| x + i as i64);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let _ = map_parallel(Parallelism::Auto, &items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn resolve_clamps_to_item_count() {
        assert_eq!(Parallelism::Fixed(64).resolve(3), 3);
        assert_eq!(Parallelism::Fixed(0).resolve(9), 1);
        assert_eq!(Parallelism::Sequential.resolve(100), 1);
        assert!(Parallelism::Auto.resolve(10_000) >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = map_parallel(Parallelism::Auto, &[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }
}
