//! Per-batch pipeline stage timings.
//!
//! Every batch entry point owns a `BatchTimings` (crate-private): one latency
//! histogram per pipeline stage, recorded from the worker pool through
//! lock-free atomics. When the batch finishes, the histograms are
//! summarized into [`StageTiming`] rows for the report *and* folded into
//! the process-wide [`raco_obs::global()`] registry under
//! `pipeline.<stage>`, where long-lived consumers (the serve `metrics`
//! op) read accumulated totals across batches.

use std::sync::{Arc, OnceLock};

use raco_obs::Histogram;

/// A pipeline stage with its own latency histogram.
///
/// Cache-facing stages come in `_hit`/`_miss` pairs: the same code path
/// is timed into one or the other depending on whether the allocation
/// cache had the entry, so hit latency (a clone of an `Arc`) and miss
/// latency (a full optimizer run) stay separately visible. `allocate` is
/// the uncached whole-loop path taken when caching is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    Parse,
    Lower,
    CurveHit,
    CurveMiss,
    Partition,
    AllocHit,
    AllocMiss,
    Allocate,
    Codegen,
    Simulate,
    Check,
}

impl Stage {
    pub(crate) const ALL: [Stage; 11] = [
        Stage::Parse,
        Stage::Lower,
        Stage::CurveHit,
        Stage::CurveMiss,
        Stage::Partition,
        Stage::AllocHit,
        Stage::AllocMiss,
        Stage::Allocate,
        Stage::Codegen,
        Stage::Simulate,
        Stage::Check,
    ];

    pub(crate) fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Lower => "lower",
            Stage::CurveHit => "curve_hit",
            Stage::CurveMiss => "curve_miss",
            Stage::Partition => "partition",
            Stage::AllocHit => "alloc_hit",
            Stage::AllocMiss => "alloc_miss",
            Stage::Allocate => "allocate",
            Stage::Codegen => "codegen",
            Stage::Simulate => "simulate",
            Stage::Check => "check",
        }
    }
}

/// The process-wide `pipeline.<stage>` histograms, resolved once: batch
/// finish runs per request in serve mode, so it must not pay a name
/// format + registry lookup per stage per batch.
fn global_stage_histograms() -> &'static [Arc<Histogram>; Stage::ALL.len()] {
    static HISTOGRAMS: OnceLock<[Arc<Histogram>; Stage::ALL.len()]> = OnceLock::new();
    HISTOGRAMS.get_or_init(|| {
        std::array::from_fn(|i| {
            raco_obs::global().histogram(&format!("pipeline.{}", Stage::ALL[i].name()))
        })
    })
}

/// Per-batch stage histograms (one [`Histogram`] per [`Stage`]).
#[derive(Debug)]
pub(crate) struct BatchTimings {
    stages: [Histogram; Stage::ALL.len()],
}

impl BatchTimings {
    pub(crate) fn new() -> Self {
        BatchTimings {
            stages: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Times `f` into the stage's histogram and returns its result.
    pub(crate) fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        self.stages[stage as usize].time(f)
    }

    /// Records an externally measured duration (nanoseconds).
    pub(crate) fn record_ns(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record(ns);
    }

    /// Summarizes the batch into report rows (stages with zero calls are
    /// omitted) and folds every histogram into the global registry under
    /// `pipeline.<stage>`.
    pub(crate) fn finish(&self) -> Vec<StageTiming> {
        let globals = global_stage_histograms();
        let mut rows = Vec::with_capacity(Stage::ALL.len());
        for ((stage, histogram), global) in Stage::ALL.iter().zip(&self.stages).zip(globals) {
            let calls = histogram.count();
            if calls == 0 {
                continue;
            }
            // The batch has quiesced, so count/sum/max are coherent. A
            // stage with ≤ 2 observations — every stage of a warm
            // single-loop batch — is reconstructed exactly from those
            // three scalars (the values are `max` and `sum - max`),
            // skipping the bucket walks of snapshot/merge/quantile;
            // this keeps always-on instrumentation inside its overhead
            // budget on cache-hit traffic.
            let row = if calls <= 2 {
                let total_ns = histogram.sum();
                let max_ns = histogram.max_value();
                let min_ns = total_ns.wrapping_sub(max_ns);
                global.record(max_ns);
                if calls == 2 {
                    global.record(min_ns);
                }
                StageTiming {
                    stage: stage.name(),
                    calls,
                    total_ns,
                    max_ns,
                    // quantile targets for n ≤ 2: p50 is the 1st
                    // observation, p95/p99 the last.
                    p50_ns: if calls == 2 { min_ns } else { max_ns },
                    p95_ns: max_ns,
                    p99_ns: max_ns,
                }
            } else {
                let snapshot = histogram.snapshot();
                global.merge_snapshot(&snapshot);
                let [p50_ns, p95_ns, p99_ns] = snapshot.quantiles([0.50, 0.95, 0.99]);
                StageTiming {
                    stage: stage.name(),
                    calls,
                    total_ns: snapshot.sum,
                    max_ns: snapshot.max,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                }
            };
            rows.push(row);
        }
        rows
    }
}

/// Summary of one pipeline stage over a batch: exact call count and
/// total, estimated quantiles (see [`raco_obs::Histogram`]). Durations
/// are nanoseconds; JSON renderings convert to microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (`parse`, `lower`, `curve_hit`, `curve_miss`,
    /// `partition`, `alloc_hit`, `alloc_miss`, `allocate`, `codegen`,
    /// `simulate`, `check`).
    pub stage: &'static str,
    /// Number of timed calls.
    pub calls: u64,
    /// Exact total across calls, in nanoseconds.
    pub total_ns: u64,
    /// Largest single call, in nanoseconds.
    pub max_ns: u64,
    /// Estimated median call, in nanoseconds.
    pub p50_ns: u64,
    /// Estimated 95th-percentile call, in nanoseconds.
    pub p95_ns: u64,
    /// Estimated 99th-percentile call, in nanoseconds.
    pub p99_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_skips_idle_stages_and_orders_rows() {
        let timings = BatchTimings::new();
        timings.record_ns(Stage::Simulate, 500);
        timings.record_ns(Stage::Parse, 1000);
        timings.record_ns(Stage::Parse, 3000);
        let rows = timings.finish();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stage, "parse");
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[0].total_ns, 4000);
        assert_eq!(rows[1].stage, "simulate");
    }

    #[test]
    fn finish_folds_into_the_global_registry() {
        let timings = BatchTimings::new();
        timings.record_ns(Stage::Partition, 42);
        let before = raco_obs::global()
            .histogram("pipeline.partition")
            .snapshot()
            .count;
        timings.finish();
        let after = raco_obs::global()
            .histogram("pipeline.partition")
            .snapshot()
            .count;
        assert_eq!(after, before + 1);
    }

    #[test]
    fn tiny_stages_report_exact_order_statistics() {
        // ≤ 2 observations take the scalar fast path: quantiles are the
        // exact observations, and the global histogram receives them
        // reconstructed from count/sum/max.
        let timings = BatchTimings::new();
        timings.record_ns(Stage::Lower, 700);
        timings.record_ns(Stage::Lower, 300);
        let before = raco_obs::global().histogram("pipeline.lower").snapshot();
        let rows = timings.finish();
        let after = raco_obs::global().histogram("pipeline.lower").snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[0].total_ns, 1000);
        assert_eq!(rows[0].p50_ns, 300);
        assert_eq!(rows[0].p95_ns, 700);
        assert_eq!(rows[0].p99_ns, 700);
        assert_eq!(rows[0].max_ns, 700);
        // Other tests share the global registry, so deltas are >=.
        assert!(after.count >= before.count + 2);
        assert!(after.sum >= before.sum + 1000);
    }

    #[test]
    fn timed_closures_record_into_the_right_stage() {
        let timings = BatchTimings::new();
        let out = timings.time(Stage::Codegen, || 7);
        assert_eq!(out, 7);
        let rows = timings.finish();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].stage, "codegen");
        assert_eq!(rows[0].calls, 1);
    }
}
