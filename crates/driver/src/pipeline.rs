//! The end-to-end batch compilation pipeline.
//!
//! One [`Pipeline`] owns a machine description, optimizer options and
//! an [`AllocationCache`]; each `compile_*` call takes a batch of DSL
//! sources through the whole stack —
//!
//! ```text
//! DSL text ──parse──▶ LoopSpec ──patterns──▶ allocation (cached)
//!     ──codegen──▶ AddressProgram ──simulate──▶ validated LoopReport
//! ```
//!
//! — fanning independent loops out across a worker pool and assembling
//! a [`CompilationReport`]. The pipeline is `Sync`: a long-lived server
//! can share one instance (and thus one warm cache) across requests.

use std::path::{Path, PathBuf};
use std::time::Instant;

use raco_agu::codegen::CodeGenerator;
use raco_agu::isa::AddressProgram;
use raco_agu::listing::ProgramListing;
use raco_agu::sim;
use raco_core::{partition, AllocError, LoopAllocation, Optimizer, OptimizerOptions};
use raco_ir::dsl::{self, ParseError};
use raco_ir::{AguSpec, CanonicalPattern, LoopSpec, MemoryLayout, Trace};

use crate::cache::{AllocationCache, CachePolicy, CacheStats};
use crate::pool::{map_parallel, Parallelism};
use crate::report::{CompilationReport, LoopFailure, LoopReport, UnitReport};
use crate::timings::{BatchTimings, Stage};

/// Errors that abort a whole batch (per-loop problems are reported in
/// the [`CompilationReport`] instead).
#[derive(Debug)]
#[non_exhaustive]
pub enum DriverError {
    /// A unit failed to parse.
    Parse {
        /// Unit label (file path or caller-provided name).
        unit: String,
        /// The underlying parse error.
        error: ParseError,
    },
    /// A source path could not be read or enumerated.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The batch contained no compilable source (empty directory, or a
    /// directory with no recognized extensions).
    EmptyBatch {
        /// The path that yielded nothing.
        path: PathBuf,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Parse { unit, error } => write!(f, "{unit}: {error}"),
            DriverError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            DriverError::EmptyBatch { path } => {
                write!(f, "{}: no DSL sources found", path.display())
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Source-file extensions recognized when compiling a directory.
pub const SOURCE_EXTENSIONS: &[&str] = &["dsp", "loop", "c"];

/// Default cap on simulated iterations when validating a flattened
/// loop nest. Nests are validated over their whole (finite) iteration
/// space — carry bugs only show at sweep boundaries — but a submitted
/// nest with a huge iteration space must not stall a request; raise
/// [`PipelineConfig::validation_iterations`] above this value to
/// validate more of such a nest.
pub const NEST_VALIDATION_CAP: u64 = 4096;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The target machine.
    pub agu: AguSpec,
    /// Allocator options (cost model, branch-and-bound budget, merge
    /// strategy); part of every cache key.
    pub options: OptimizerOptions,
    /// Worker-pool sizing.
    pub parallelism: Parallelism,
    /// Simulate every generated program against a reference trace.
    pub validate: bool,
    /// Iterations to simulate when `validate` is on. Flattened loop
    /// nests always validate their whole finite iteration space capped
    /// at `max(validation_iterations, NEST_VALIDATION_CAP)` — see
    /// [`NEST_VALIDATION_CAP`].
    pub validation_iterations: u64,
    /// Base address of the first array in the per-loop memory layout.
    pub layout_origin: i64,
    /// Words reserved per array in the per-loop memory layout.
    pub array_words: i64,
    /// Use the allocation cache (disable to measure cold paths).
    pub caching: bool,
    /// Cache retention policy. Only the policy the [`Pipeline`] was
    /// *built* with matters — the cache lives as long as the pipeline,
    /// so per-request override configs (see
    /// [`Pipeline::compile_units_with`]) cannot change it.
    pub cache_policy: CachePolicy,
    /// Attach per-loop listings and per-unit assembled listings.
    pub listings: bool,
}

impl PipelineConfig {
    /// Defaults for `agu`: parallel, validating, caching, no listings.
    /// The optimizer options price the machine's modify registers (see
    /// [`PipelineConfig::effective_options`]).
    pub fn new(agu: AguSpec) -> Self {
        let mut options = OptimizerOptions::default();
        options.cost_model = options
            .cost_model
            .with_modify_registers(agu.modify_registers());
        PipelineConfig {
            agu,
            options,
            parallelism: Parallelism::Auto,
            validate: true,
            validation_iterations: 16,
            layout_origin: 0x1000,
            array_words: 0x400,
            caching: true,
            cache_policy: CachePolicy::Unbounded,
            listings: false,
        }
    }

    /// The optimizer options this configuration actually allocates
    /// with: [`PipelineConfig::options`] with the cost model's
    /// modify-register count and explicit-update cost forced to the
    /// machine's.
    ///
    /// Allocation must price the same machine code generation emits
    /// for, or predicted and measured costs drift apart — so the
    /// pipeline never lets the two disagree, even for configurations
    /// assembled by hand or overridden per request (`raco serve`
    /// builds the request machine from knobs without touching the
    /// options). Since the options are part of every allocation-cache
    /// key, this is also what keys machines by modify-register count
    /// and ADDA cost.
    pub fn effective_options(&self) -> OptimizerOptions {
        let mut options = self.options;
        options.cost_model = options
            .cost_model
            .with_modify_registers(self.agu.modify_registers())
            .with_adda_cost(self.agu.cost_table().adda());
        options
    }
}

/// The batch compilation pipeline. See the [module docs](self).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use raco_driver::Pipeline;
/// use raco_ir::AguSpec;
///
/// let pipeline = Pipeline::new(AguSpec::new(4, 1)?);
/// let report = pipeline.compile_str(
///     "two-stage",
///     "for (i = 0; i < 64; i++) { y[i] = x[i - 1] + x[i] + x[i + 1]; }
///      for (j = 0; j < 32; j++) { z[j] = y[j - 1] + y[j] + y[j + 1]; }",
/// )?;
/// assert_eq!(report.loop_count(), 2);
/// assert_eq!(report.failed(), 0);
/// // The second loop's x/y chains canonicalize like the first one's:
/// assert!(report.cache.allocation_hits + report.cache.curve_hits > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    cache: AllocationCache,
}

impl Pipeline {
    /// A pipeline with default configuration for `agu`.
    pub fn new(agu: AguSpec) -> Self {
        Self::with_config(PipelineConfig::new(agu))
    }

    /// A pipeline with explicit configuration.
    pub fn with_config(config: PipelineConfig) -> Self {
        let cache = AllocationCache::with_policy(config.cache_policy);
        Pipeline { config, cache }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The pipeline's allocation cache (for snapshotting and stats).
    pub fn cache(&self) -> &AllocationCache {
        &self.cache
    }

    /// Cumulative cache statistics for this pipeline instance.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Restores a cache snapshot (see [`crate::persist`]) into this
    /// pipeline's cache. Corrupt or mismatched entries are skipped and
    /// reported, never fatal.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PersistError`] when the file cannot be read.
    pub fn load_cache(
        &self,
        path: &Path,
    ) -> Result<crate::persist::LoadReport, crate::persist::PersistError> {
        let _span = raco_obs::global().time("snapshot.load");
        crate::persist::load(&self.cache, path)
    }

    /// Writes every resident cache entry to a snapshot file that a
    /// later process can [`load_cache`](Self::load_cache).
    ///
    /// # Errors
    ///
    /// Returns [`crate::PersistError`] when the file cannot be written.
    pub fn save_cache(
        &self,
        path: &Path,
    ) -> Result<crate::persist::SaveReport, crate::persist::PersistError> {
        let _span = raco_obs::global().time("snapshot.save");
        crate::persist::save(&self.cache, path)
    }

    /// Drops every cached allocation and cost curve (hit/miss counters
    /// are cumulative and survive). Long-lived pipelines serving
    /// unbounded workloads can call this to cap memory.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Compiles one in-memory source (possibly many loops).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] if the source does not parse;
    /// per-loop failures are recorded in the report.
    pub fn compile_str(&self, name: &str, source: &str) -> Result<CompilationReport, DriverError> {
        self.compile_units(&[(name.to_owned(), source.to_owned())])
    }

    /// Compiles a file, or every recognized source in a directory
    /// (extensions: [`SOURCE_EXTENSIONS`]), as one batch.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Io`] on unreadable paths,
    /// [`DriverError::EmptyBatch`] for directories without sources and
    /// [`DriverError::Parse`] on the first unparsable unit.
    pub fn compile_path(&self, path: &Path) -> Result<CompilationReport, DriverError> {
        let read = |p: &Path| -> Result<(String, String), DriverError> {
            let text = std::fs::read_to_string(p).map_err(|error| DriverError::Io {
                path: p.to_path_buf(),
                error,
            })?;
            Ok((p.display().to_string(), text))
        };
        let mut units = Vec::new();
        if path.is_dir() {
            let entries = std::fs::read_dir(path).map_err(|error| DriverError::Io {
                path: path.to_path_buf(),
                error,
            })?;
            let mut files: Vec<PathBuf> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.extension()
                        .and_then(|e| e.to_str())
                        .is_some_and(|e| SOURCE_EXTENSIONS.contains(&e))
                })
                .collect();
            files.sort();
            for file in files {
                units.push(read(&file)?);
            }
            if units.is_empty() {
                return Err(DriverError::EmptyBatch {
                    path: path.to_path_buf(),
                });
            }
        } else {
            units.push(read(path)?);
        }
        self.compile_units(&units)
    }

    /// Compiles the whole `raco-kernels` suite as one batch workload.
    pub fn compile_kernels(&self) -> CompilationReport {
        self.compile_kernels_with(&self.config)
    }

    /// Like [`compile_kernels`](Self::compile_kernels), but under a
    /// per-request configuration (see
    /// [`compile_units_with`](Self::compile_units_with)).
    pub fn compile_kernels_with(&self, config: &PipelineConfig) -> CompilationReport {
        let kernels = raco_kernels::suite();
        let started = Instant::now();
        let timings = BatchTimings::new();
        let loops: Vec<(String, LoopSpec)> = kernels
            .iter()
            .map(|k| (k.name().to_owned(), k.spec().clone()))
            .collect();
        let compiled = map_parallel(config.parallelism, &loops, |_, (name, spec)| {
            let (mut report, program) = self.compile_loop_timed(config, spec, &timings);
            report.name = name.clone();
            (report, program)
        });
        let mut unit_listing = config.listings.then(|| ProgramListing::new("raco-kernels"));
        let mut reports = Vec::with_capacity(compiled.len());
        for (report, program) in compiled {
            if let (Some(listing), Some(program)) = (unit_listing.as_mut(), program) {
                listing.push(report.name.clone(), program);
            }
            reports.push(report);
        }
        let units = vec![UnitReport {
            name: "raco-kernels".to_owned(),
            loops: reports,
            listing: unit_listing.map(|l| l.to_string()),
        }];
        self.finish_report(config, units, loops.len(), started, &timings)
    }

    /// Compiles named `(name, source)` units as one batch: all loops of
    /// all units are scheduled on one worker pool, so small units do
    /// not serialize behind large ones.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] on the first unit that fails to
    /// parse (per-loop failures do not abort the batch).
    pub fn compile_units(
        &self,
        units: &[(String, String)],
    ) -> Result<CompilationReport, DriverError> {
        self.compile_units_with(&self.config, units)
    }

    /// Like [`compile_units`](Self::compile_units), but under a
    /// per-request configuration while still sharing this pipeline's
    /// allocation cache.
    ///
    /// This is the entry point for request/response front ends
    /// (`raco serve`): every cache key already includes the machine
    /// parameters and optimizer options, so requests against different
    /// machines can safely share one warm cache. Two fields of the
    /// override are ignored because they are properties of the
    /// pipeline, not of a request: [`PipelineConfig::cache_policy`]
    /// (the cache was built when the pipeline was) and — when the
    /// override disables it — [`PipelineConfig::caching`] only skips
    /// the cache for that request without dropping existing entries.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] on the first unit that fails to
    /// parse (per-loop failures do not abort the batch).
    pub fn compile_units_with(
        &self,
        config: &PipelineConfig,
        units: &[(String, String)],
    ) -> Result<CompilationReport, DriverError> {
        let started = Instant::now();
        let timings = BatchTimings::new();
        // Parse up front: parse errors abort the batch, and parsing is
        // cheap relative to allocation. Parsing and lowering are timed
        // as separate stages (this is `dsl::parse_program` split at its
        // two halves, with identical naming and error mapping). The
        // stages are timed boundary-to-boundary with one shared clock
        // read per boundary — reading the clock is not free on every
        // host, so the glue between stages lands in the following
        // stage's sample instead of paying an extra read to exclude it.
        let mut work: Vec<(usize, LoopSpec)> = Vec::new();
        let mut unit_names: Vec<String> = Vec::with_capacity(units.len());
        let mut mark = started;
        for (index, (name, source)) in units.iter().enumerate() {
            let parsed = dsl::parse_unit(source);
            let now = Instant::now();
            timings.record_ns(Stage::Parse, now.duration_since(mark).as_nanos() as u64);
            mark = now;
            let (decls, asts) = parsed.map_err(|error| DriverError::Parse {
                unit: name.clone(),
                error,
            })?;
            unit_names.push(name.clone());
            for (i, ast) in asts.iter().enumerate() {
                let lowered = dsl::lower_unit_loop(&decls, ast);
                let now = Instant::now();
                timings.record_ns(Stage::Lower, now.duration_since(mark).as_nanos() as u64);
                mark = now;
                let mut spec = lowered.map_err(|e| DriverError::Parse {
                    unit: name.clone(),
                    error: e.attach_source(source),
                })?;
                spec.set_name(&format!("loop{i}"));
                work.push((index, spec));
            }
        }

        let compiled = map_parallel(config.parallelism, &work, |_, (unit, spec)| {
            (*unit, self.compile_loop_timed(config, spec, &timings))
        });

        let mut reports: Vec<UnitReport> = unit_names
            .into_iter()
            .map(|name| UnitReport {
                name,
                loops: Vec::new(),
                listing: None,
            })
            .collect();
        let mut listings: Vec<ProgramListing> = if config.listings {
            reports
                .iter()
                .map(|u| ProgramListing::new(u.name.clone()))
                .collect()
        } else {
            Vec::new()
        };
        for (unit, (loop_report, program)) in compiled {
            if let (true, Some(program)) = (config.listings, program) {
                listings[unit].push(loop_report.name.clone(), program);
            }
            reports[unit].loops.push(loop_report);
        }
        for (unit, listing) in reports.iter_mut().zip(listings) {
            unit.listing = Some(listing.to_string());
        }
        let total = work.len();
        Ok(self.finish_report(config, reports, total, started, &timings))
    }

    fn finish_report(
        &self,
        config: &PipelineConfig,
        units: Vec<UnitReport>,
        loops: usize,
        started: Instant,
        timings: &BatchTimings,
    ) -> CompilationReport {
        CompilationReport {
            units,
            address_registers: config.agu.address_registers(),
            modify_range: config.agu.modify_range(),
            update_range: config.agu.update_range(),
            costs: config.agu.cost_table(),
            modify_registers: config.agu.modify_registers(),
            threads: config.parallelism.resolve(loops),
            elapsed: started.elapsed(),
            cache: self.cache.stats(),
            timings: timings.finish(),
        }
    }

    /// Compiles a single loop end to end, returning its report and (on
    /// success) the generated address program.
    ///
    /// This is the pipeline's unit of parallel work; it is public so
    /// callers with their own scheduling (or pre-parsed [`LoopSpec`]s)
    /// can reuse the cached hot path.
    pub fn compile_loop(&self, spec: &LoopSpec) -> (LoopReport, Option<AddressProgram>) {
        self.compile_loop_with(&self.config, spec)
    }

    /// Like [`compile_loop`](Self::compile_loop), but under a
    /// per-request configuration (see
    /// [`compile_units_with`](Self::compile_units_with)).
    pub fn compile_loop_with(
        &self,
        config: &PipelineConfig,
        spec: &LoopSpec,
    ) -> (LoopReport, Option<AddressProgram>) {
        // Standalone loops still feed the process-wide stage
        // histograms; batch entry points share one BatchTimings across
        // the pool instead.
        let timings = BatchTimings::new();
        let out = self.compile_loop_timed(config, spec, &timings);
        timings.finish();
        out
    }

    fn compile_loop_timed(
        &self,
        config: &PipelineConfig,
        spec: &LoopSpec,
        timings: &BatchTimings,
    ) -> (LoopReport, Option<AddressProgram>) {
        let mut report = LoopReport {
            name: spec.name().to_owned(),
            arrays: 0,
            accesses: spec.len(),
            registers_used: 0,
            virtual_registers: 0,
            cost: 0,
            code_words: 0,
            measured_cost: None,
            addresses_checked: 0,
            listing: None,
            failure: None,
        };

        let allocation = match self.allocate(config, spec, timings) {
            Ok(allocation) => allocation,
            Err(failure) => {
                report.failure = Some(failure);
                return (report, None);
            }
        };
        report.arrays = allocation.per_array().len();
        report.registers_used = allocation.total_registers();
        report.virtual_registers = allocation
            .per_array()
            .iter()
            .map(|(_, a)| a.virtual_registers())
            .sum();
        report.cost = u64::from(allocation.total_cost());

        let layout = MemoryLayout::contiguous(spec, config.layout_origin, config.array_words);
        let generator = CodeGenerator::new(config.agu);
        // Codegen and simulate are timed boundary-to-boundary: the
        // clock read that ends the codegen sample starts the simulate
        // one (see compile_units_with on why reads are rationed).
        let codegen_started = Instant::now();
        let generated = generator.generate(spec, &allocation, &layout);
        let codegen_done = Instant::now();
        timings.record_ns(
            Stage::Codegen,
            codegen_done.duration_since(codegen_started).as_nanos() as u64,
        );
        let program = match generated {
            Ok(program) => program,
            Err(error) => {
                report.failure = Some(LoopFailure::CodeGen(error.to_string()));
                return (report, None);
            }
        };
        report.code_words = program.words();

        if config.validate {
            // Flattened nests are finite and their carry behaviour only
            // shows at sweep boundaries, so validate the whole nest
            // (capped — raising validation_iterations raises the cap)
            // instead of the configured prefix.
            let iterations = match spec.nest() {
                Some(nest) => nest
                    .total_iterations()
                    .clamp(1, config.validation_iterations.max(NEST_VALIDATION_CAP)),
                None => config.validation_iterations.max(1),
            };
            let outcome = {
                let trace = Trace::capture(spec, &layout, iterations);
                sim::run(&program, &trace, &config.agu)
            };
            timings.record_ns(Stage::Simulate, codegen_done.elapsed().as_nanos() as u64);
            // Second oracle: the declarative listing checker re-derives
            // correctness from the rows alone. Both oracles must pass;
            // a listing exactly one of them rejects is an oracle
            // disagreement — its own bug class, never silently folded
            // into a plain validation failure.
            let checked = timings.time(Stage::Check, || {
                raco_check::check_program(spec, &layout, &config.agu, &program, Some(report.cost))
            });
            match (outcome, checked.is_clean()) {
                (Ok(sim_report), true) => {
                    let measured = sim_report.explicit_updates_per_iteration();
                    report.measured_cost = Some(measured);
                    report.addresses_checked = sim_report.accesses_checked();
                    // The allocator prices the same machine codegen
                    // emits for — modify registers included — so the
                    // predicted cost must equal the measured cost
                    // exactly, on every machine.
                    if measured != report.cost {
                        report.failure = Some(LoopFailure::CostMismatch {
                            predicted: report.cost,
                            measured,
                        });
                        return (report, None);
                    }
                }
                (Ok(sim_report), false) => {
                    report.measured_cost = Some(sim_report.explicit_updates_per_iteration());
                    report.addresses_checked = sim_report.accesses_checked();
                    report.failure = Some(LoopFailure::OracleDisagreement {
                        simulator: None,
                        checker: Some(checked.summary()),
                    });
                    return (report, None);
                }
                (Err(error), false) => {
                    report.failure = Some(LoopFailure::Validation(format!(
                        "{error}; checker: {}",
                        checked.summary()
                    )));
                    return (report, None);
                }
                (Err(error), true) => {
                    report.failure = Some(LoopFailure::OracleDisagreement {
                        simulator: Some(error.to_string()),
                        checker: None,
                    });
                    return (report, None);
                }
            }
        }

        if config.listings {
            report.listing = Some(program.to_string());
        }
        (report, Some(program))
    }

    /// Allocates one loop, going through the cache when enabled.
    ///
    /// The cached path mirrors [`Optimizer::allocate_loop`] exactly:
    /// per-pattern cost curves (cached by curve class — the
    /// mirror-invariant cost class on symmetric machines, the exact
    /// canonical form otherwise) feed the register partition, then
    /// each array is allocated with
    /// its granted register count (cached by exact canonical form, so
    /// hits reuse covers *and* concrete update deltas).
    fn allocate(
        &self,
        config: &PipelineConfig,
        spec: &LoopSpec,
        timings: &BatchTimings,
    ) -> Result<LoopAllocation, LoopFailure> {
        // The effective options price the machine's modify registers
        // (and, being part of every cache key, keep machines differing
        // only in MR count on distinct entries).
        let options = config.effective_options();
        let optimizer = Optimizer::with_options(config.agu, options);
        if !config.caching {
            return timings
                .time(Stage::Allocate, || optimizer.allocate_loop(spec))
                .map_err(|e| LoopFailure::Allocation(e.to_string()));
        }

        let patterns = spec.patterns();
        let k = config.agu.address_registers();
        // Same prechecks (and, via AllocError, the same failure texts)
        // as the uncached Optimizer::allocate_loop path.
        if patterns.is_empty() {
            return Err(LoopFailure::Allocation(AllocError::EmptyLoop.to_string()));
        }
        if patterns.len() > k {
            return Err(LoopFailure::Allocation(
                AllocError::InsufficientRegisters {
                    arrays: patterns.len(),
                    registers: k,
                }
                .to_string(),
            ));
        }
        let range = config.agu.update_range();

        let canonicals: Vec<CanonicalPattern> = patterns.iter().map(CanonicalPattern::of).collect();
        // Cache-facing stages time the whole lookup and discriminate by
        // outcome: the compute closure runs only on a miss, so setting a
        // flag inside it routes the sample to the hit or miss histogram.
        // The curve → partition → allocation stages run back to back,
        // so they are timed boundary-to-boundary with one shared clock
        // read per boundary (see compile_units_with).
        let mut mark = Instant::now();
        let mut curves: Vec<Vec<u32>> = Vec::with_capacity(patterns.len());
        for (pattern, canonical) in patterns.iter().zip(&canonicals) {
            let mut missed = false;
            let curve = self
                .cache
                .cost_curve(canonical, range, k, &options, || {
                    missed = true;
                    optimizer.cost_curve(pattern, k)
                })
                .as_ref()
                .clone();
            let now = Instant::now();
            let stage = if missed {
                Stage::CurveMiss
            } else {
                Stage::CurveHit
            };
            timings.record_ns(stage, now.duration_since(mark).as_nanos() as u64);
            mark = now;
            curves.push(curve);
        }
        let grants = partition::distribute_registers(&curves, k);
        let now = Instant::now();
        timings.record_ns(Stage::Partition, now.duration_since(mark).as_nanos() as u64);
        mark = now;
        let grants = grants.map_err(|e| LoopFailure::Allocation(e.to_string()))?;

        let mut per_array = Vec::with_capacity(patterns.len());
        for ((pattern, canonical), &granted) in patterns.iter().zip(&canonicals).zip(&grants) {
            let mut missed = false;
            let allocation = self
                .cache
                .allocation(canonical, range, granted, &options, || {
                    missed = true;
                    optimizer.allocate_with_registers(pattern, granted)
                });
            let now = Instant::now();
            let stage = if missed {
                Stage::AllocMiss
            } else {
                Stage::AllocHit
            };
            timings.record_ns(stage, now.duration_since(mark).as_nanos() as u64);
            mark = now;
            // Zero-clone hit path: the Arc handed out by the cache
            // goes straight into the LoopAllocation, so a warm hit
            // is a pointer bump — covers, distance models and phase
            // reports are shared with the cache, never deep-copied.
            per_array.push((pattern.array(), allocation));
        }
        Ok(LoopAllocation::from_parts(
            per_array,
            grants,
            options.cost_model,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(k: usize) -> Pipeline {
        Pipeline::new(AguSpec::new(k, 1).unwrap())
    }

    #[test]
    fn single_loop_compiles_and_validates() {
        let report = pipeline(3)
            .compile_str(
                "unit",
                "for (i = 1; i < 100; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }",
            )
            .unwrap();
        assert_eq!(report.loop_count(), 1);
        assert_eq!(report.failed(), 0);
        let lr = &report.units[0].loops[0];
        assert_eq!(lr.cost, 0);
        assert_eq!(lr.measured_cost, Some(0));
        assert!(lr.addresses_checked > 0);
        assert_eq!(lr.arrays, 2);
    }

    #[test]
    fn parse_errors_abort_the_batch() {
        let err = pipeline(3)
            .compile_str("bad", "for (i = 0; i++) {")
            .unwrap_err();
        assert!(matches!(err, DriverError::Parse { .. }));
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn per_loop_failures_do_not_abort_the_batch() {
        // Second loop needs 3 arrays on a K = 2 machine.
        let report = pipeline(2)
            .compile_str(
                "unit",
                "for (i = 0; i < 8; i++) { s += x[i]; }
                 for (j = 0; j < 8; j++) { a[j] = b[j] + c[j]; }",
            )
            .unwrap();
        assert_eq!(report.loop_count(), 2);
        assert_eq!(report.succeeded(), 1);
        assert_eq!(report.failed(), 1);
        let failed = &report.units[0].loops[1];
        assert!(matches!(failed.failure, Some(LoopFailure::Allocation(_))));
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let pipeline = pipeline(4);
        let source: String = (0..8)
            .map(|i| {
                format!(
                    "for (i = 0; i < 64; i++) {{ y{0}[i] = x{0}[i-1] + x{0}[i] + x{0}[i+1]; }}\n",
                    i
                )
            })
            .collect();
        let report = pipeline.compile_str("repeats", &source).unwrap();
        assert_eq!(report.failed(), 0);
        let stats = report.cache;
        // 8 identical loops: everything after the first is a pure hit.
        assert!(
            stats.allocation_hits >= 14,
            "expected hits for 7 repeated loops, got {stats:?}"
        );
        assert_eq!(stats.allocation_entries, 2, "x-chain and y-singleton");

        // Clearing empties the tables (counters are cumulative) and
        // the next batch repopulates them with identical results.
        pipeline.clear_cache();
        assert_eq!(pipeline.cache_stats().allocation_entries, 0);
        let again = pipeline.compile_str("repeats", &source).unwrap();
        assert_eq!(again.cache.allocation_entries, 2);
        for (a, b) in report.loops().zip(again.loops()) {
            assert_eq!(a, b, "results identical after cache clear");
        }
    }

    #[test]
    fn cached_and_uncached_runs_agree() {
        let source = "for (i = 0; i < 32; i++) { acc += a[i] * b[8 * i]; }
            for (j = 2; j < 100; j++) {
                s1 = A[j+1]; s2 = A[j]; s3 = A[j+2]; s4 = A[j-1];
                s5 = A[j+1]; s6 = A[j]; s7 = A[j-2];
            }
            for (k = 16; k > 0; k--) { z[k] = z[k] + w[16 - k]; }";
        let agu = AguSpec::new(3, 1).unwrap();
        let mut cold_config = PipelineConfig::new(agu);
        cold_config.caching = false;
        cold_config.parallelism = Parallelism::Sequential;
        let cold = Pipeline::with_config(cold_config)
            .compile_str("unit", source)
            .unwrap();
        let warm_pipeline = Pipeline::new(agu);
        // Run twice so the second pass is all hits; results must agree
        // with each other and with the uncached run.
        let warm1 = warm_pipeline.compile_str("unit", source).unwrap();
        let warm2 = warm_pipeline.compile_str("unit", source).unwrap();
        for (a, b) in cold.loops().zip(warm1.loops()) {
            assert_eq!(a, b, "cold vs warm first pass");
        }
        for (a, b) in warm1.loops().zip(warm2.loops()) {
            assert_eq!(a, b, "first vs second warm pass");
        }
        let stats = warm_pipeline.cache_stats();
        assert!(stats.allocation_hits > 0);
    }

    #[test]
    fn per_request_configs_share_one_cache() {
        let pipeline = pipeline(4);
        let source = "for (i = 0; i < 64; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }";
        let first = pipeline.compile_str("a", source).unwrap();
        assert_eq!(first.failed(), 0);

        // A request against a *different* machine: distinct cache keys,
        // so it must miss (no false sharing) …
        let mut other_machine = pipeline.config().clone();
        other_machine.agu = AguSpec::new(2, 2).unwrap();
        let second =
            pipeline.compile_units_with(&other_machine, &[("b".to_owned(), source.to_owned())]);
        let second = second.unwrap();
        assert_eq!(second.failed(), 0);
        assert_eq!(second.address_registers, 2);
        assert_eq!(second.modify_range, 2);
        let after_second = pipeline.cache_stats();

        // … while a repeat of the first request, issued through the
        // override entry point with the default config, is a pure hit.
        let third = pipeline
            .compile_units_with(
                &pipeline.config().clone(),
                &[("c".to_owned(), source.to_owned())],
            )
            .unwrap();
        assert_eq!(third.failed(), 0);
        let after_third = pipeline.cache_stats();
        assert!(after_third.allocation_hits > after_second.allocation_hits);
        assert_eq!(
            after_third.allocation_misses,
            after_second.allocation_misses
        );
        for (a, b) in first.loops().zip(third.loops()) {
            assert_eq!(a, b, "identical request, identical report");
        }
    }

    #[test]
    fn bounded_pipelines_evict_instead_of_growing() {
        let agu = AguSpec::new(4, 1).unwrap();
        let mut config = PipelineConfig::new(agu);
        config.cache_policy = CachePolicy::Bounded(16);
        config.parallelism = Parallelism::Sequential;
        let pipeline = Pipeline::with_config(config);
        // A sweep of distinct shapes (one per gap width) overflows the
        // bound; entry counts stay near it while counters keep going.
        for gap in 1..200i64 {
            let source = format!(
                "for (i = 0; i < 64; i++) {{ y[i] = x[i] + x[i + {gap}] + x[i + {}]; }}",
                3 * gap
            );
            let report = pipeline.compile_str("sweep", &source).unwrap();
            assert_eq!(report.failed(), 0);
        }
        let stats = pipeline.cache_stats();
        assert!(
            stats.allocation_entries <= 16 + 16,
            "alloc entries {} not bounded",
            stats.allocation_entries
        );
        assert!(stats.allocation_evictions > 0);
        assert!(stats.curve_evictions > 0);
    }

    #[test]
    fn kernels_compile_as_a_batch() {
        let report = pipeline(4).compile_kernels();
        assert_eq!(report.loop_count(), raco_kernels::suite().len());
        assert_eq!(report.failed(), 0, "table:\n{}", report.render_table());
        assert!(report.loops().all(|l| l.measured_cost.is_some()));
        let names: Vec<&str> = report.units[0]
            .loops
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert!(names.contains(&"paper_example"));
    }

    #[test]
    fn listings_are_attached_on_request() {
        let agu = AguSpec::new(3, 1).unwrap();
        let mut config = PipelineConfig::new(agu);
        config.listings = true;
        let report = Pipeline::with_config(config)
            .compile_str(
                "unit",
                "for (i = 0; i < 8; i++) { y[i] = x[i]; }
                 for (j = 0; j < 8; j++) { s += x[j]; }",
            )
            .unwrap();
        let unit = &report.units[0];
        let listing = unit.listing.as_deref().expect("unit listing requested");
        assert!(listing.contains("loop0:"));
        assert!(listing.contains("loop1:"));
        assert!(listing.contains("; unit total"));
        assert!(unit.loops.iter().all(|l| l.listing.is_some()));
    }

    #[test]
    fn directory_compilation_reads_every_source() {
        let dir = std::env::temp_dir().join(format!(
            "raco-driver-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("a.dsp"),
            "for (i = 0; i < 8; i++) { y[i] = x[i]; }",
        )
        .unwrap();
        std::fs::write(
            dir.join("b.loop"),
            "for (i = 0; i < 8; i++) { s += x[i] * h[7 - i]; }",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "not source").unwrap();
        let report = pipeline(3).compile_path(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report.units.len(), 2);
        assert_eq!(report.loop_count(), 2);
        assert_eq!(report.failed(), 0);
        // Units are sorted by path for determinism.
        assert!(report.units[0].name.ends_with("a.dsp"));
    }

    #[test]
    fn missing_paths_surface_io_errors() {
        let err = pipeline(2)
            .compile_path(Path::new("/nonexistent/raco/source.dsp"))
            .unwrap_err();
        assert!(matches!(err, DriverError::Io { .. }));
        let empty = std::env::temp_dir().join(format!("raco-driver-empty-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        let err = pipeline(2).compile_path(&empty).unwrap_err();
        std::fs::remove_dir_all(&empty).ok();
        assert!(matches!(err, DriverError::EmptyBatch { .. }));
    }

    #[test]
    fn reports_carry_stage_timings() {
        let pipeline = pipeline(4);
        let source = "for (i = 0; i < 64; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }";
        let cold = pipeline.compile_str("unit", source).unwrap();
        let stages: Vec<&str> = cold.timings.iter().map(|t| t.stage).collect();
        for expected in [
            "parse",
            "lower",
            "curve_miss",
            "partition",
            "alloc_miss",
            "codegen",
            "simulate",
            "check",
        ] {
            assert!(
                stages.contains(&expected),
                "missing {expected} in {stages:?}"
            );
        }
        assert!(
            !stages.contains(&"allocate"),
            "cached batch never runs the uncached stage"
        );
        let parse = cold.timings.iter().find(|t| t.stage == "parse").unwrap();
        assert_eq!(parse.calls, 1);
        assert!(parse.total_ns > 0);
        assert!(parse.p50_ns <= parse.max_ns);

        // A warm identical batch allocates through cache hits.
        let warm = pipeline.compile_str("unit", source).unwrap();
        let warm_stages: Vec<&str> = warm.timings.iter().map(|t| t.stage).collect();
        assert!(warm_stages.contains(&"alloc_hit"), "{warm_stages:?}");
        assert!(!warm_stages.contains(&"alloc_miss"), "{warm_stages:?}");

        // Uncached runs time whole-loop allocation instead.
        let mut uncached_config = pipeline.config().clone();
        uncached_config.caching = false;
        let uncached = pipeline
            .compile_units_with(&uncached_config, &[("u".to_owned(), source.to_owned())])
            .unwrap();
        let uncached_stages: Vec<&str> = uncached.timings.iter().map(|t| t.stage).collect();
        assert!(uncached_stages.contains(&"allocate"), "{uncached_stages:?}");
        assert!(
            !uncached_stages.contains(&"alloc_hit"),
            "{uncached_stages:?}"
        );
    }

    #[test]
    fn pipeline_is_shareable_across_threads() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pipeline>();
        assert_send_sync::<PipelineConfig>();
        assert_send_sync::<DriverError>();
    }
}
