//! A minimal JSON writer for reports.
//!
//! The pipeline emits machine-readable `CompilationReport`s; a full
//! serde dependency is not warranted (and not available offline) for
//! write-only JSON, so this module provides an order-preserving value
//! tree and a spec-compliant renderer (string escaping, no trailing
//! commas, `null` for absent fields).

use std::fmt::Write as _;

/// An order-preserving JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (rendered without decimal point).
    Int(i64),
    /// Unsigned integer (rendered without decimal point).
    UInt(u64),
    /// Finite float; non-finite values render as `null` per RFC 8259.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object builder starting empty.
    pub fn obj() -> Vec<(String, Json)> {
        Vec::new()
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON indented by two spaces.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_sequence(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            Json::Obj(fields) => {
                write_sequence(out, indent, level, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                });
            }
        }
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_per_spec() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), r#""\u0001""#);
    }

    #[test]
    fn containers_preserve_order() {
        let value = Json::Obj(vec![
            ("zeta".into(), Json::Int(1)),
            ("alpha".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(value.render(), r#"{"zeta":1,"alpha":[1,2]}"#);
    }

    #[test]
    fn pretty_rendering_is_indented_and_reparsable_by_eye() {
        let value = Json::Obj(vec![
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("nested".into(), Json::Arr(vec![Json::Bool(false)])),
        ]);
        let pretty = value.render_pretty();
        assert!(pretty.contains("\"empty_obj\": {}"));
        assert!(pretty.contains("  \"nested\": [\n    false\n  ]"));
        assert!(pretty.ends_with("}\n"));
    }
}
