//! A minimal JSON reader and writer.
//!
//! The pipeline emits machine-readable `CompilationReport`s and the
//! serve front end (`raco-serve`) reads newline-delimited JSON
//! requests; a full serde dependency is not warranted (and not
//! available offline) for either direction, so this module provides an
//! order-preserving value tree, a spec-compliant renderer (string
//! escaping, no trailing commas, `null` for absent fields) and a
//! recursive-descent parser ([`Json::parse`]) with the accessors a
//! protocol handler needs ([`Json::get`], [`Json::as_str`], …).

use std::fmt;
use std::fmt::Write as _;

/// An order-preserving JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (rendered without decimal point).
    Int(i64),
    /// Unsigned integer (rendered without decimal point).
    UInt(u64),
    /// Finite float; non-finite values render as `null` per RFC 8259.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses one complete JSON value (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// Integral numbers without exponent or fraction parse as
    /// [`Json::Int`] / [`Json::UInt`]; everything else numeric parses
    /// as [`Json::Num`]. Objects keep key order and duplicate keys
    /// ([`Json::get`] returns the first).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] (with a byte offset) on malformed
    /// input or nesting deeper than 128 levels.
    ///
    /// ```
    /// use raco_driver::json::Json;
    ///
    /// let value = Json::parse(r#"{"op": "compile", "iterations": 16}"#)?;
    /// assert_eq!(value.get("op").and_then(Json::as_str), Some("compile"));
    /// assert_eq!(value.get("iterations").and_then(Json::as_u64), Some(16));
    /// assert!(Json::parse("{\"unterminated\": ").is_err());
    /// # Ok::<(), raco_driver::json::JsonParseError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (first match); `None` for missing
    /// keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer in range (floats are
    /// accepted when they are exact integers, as parsers for other
    /// languages often produce `16.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            // `u64::MAX as f64` rounds up to 2^64, so the bound must be
            // exclusive: every integral f64 below it converts exactly.
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n < u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, under the same rules as
    /// [`as_u64`](Self::as_u64).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::UInt(u) => i64::try_from(u).ok(),
            // `i64::MAX as f64` rounds up to 2^63 (exclusive bound);
            // `i64::MIN as f64` is exactly -2^63 (inclusive is right).
            Json::Num(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n < i64::MAX as f64 => {
                Some(n as i64)
            }
            _ => None,
        }
    }

    /// An object builder starting empty.
    pub fn obj() -> Vec<(String, Json)> {
        Vec::new()
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON indented by two spaces.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_sequence(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            Json::Obj(fields) => {
                write_sequence(out, indent, level, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                });
            }
        }
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

/// Recursion guard: JSON this deep is hostile, not a report.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `literal` (e.g. `true`) or fails without advancing.
    fn literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{literal}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string key"));
            }
            let key = self.string()?;
            self.skip_whitespace();
            if self.peek() != Some(b':') {
                return Err(self.error("expected `:` after key"));
            }
            self.pos += 1;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one shot; JSON strings are UTF-8
            // already, so only `"`, `\` and control bytes break a run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                    // Parser input is &str, so runs are always valid UTF-8;
                    // defensive for future byte-level callers.
                    self.error("invalid UTF-8 in string")
                })?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = self.peek().ok_or_else(|| self.error("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        if self.peek() != Some(b'u') {
                            return Err(self.error("expected low surrogate"));
                        }
                        self.pos += 1;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else {
                    char::from_u32(unit).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            other => {
                return Err(self.error(format!("invalid escape `\\{}`", other as char)));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let digits = end
            .map(|e| &self.bytes[self.pos..e])
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        // Exactly four hex digits — from_str_radix alone would also
        // accept a `+` sign, which the JSON grammar forbids.
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.error("invalid \\u escape"));
        }
        let text = std::str::from_utf8(digits).expect("hex digits are ASCII");
        let unit = u32::from_str_radix(text, 16).expect("four hex digits fit in u32");
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        // str::parse re-validates most of the grammar (lone `-`,
        // misplaced signs, empty exponents) but is laxer than JSON on
        // leading zeros (`007`, `01.5`), so check those here.
        let unsigned = text.strip_prefix('-').unwrap_or(text);
        if unsigned.starts_with('0') && unsigned.as_bytes().get(1).is_some_and(u8::is_ascii_digit) {
            self.pos = start;
            return Err(self.error(format!("invalid number `{text}` (leading zero)")));
        }
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.error(format!("invalid number `{text}`")))
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_per_spec() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), r#""\u0001""#);
    }

    #[test]
    fn containers_preserve_order() {
        let value = Json::Obj(vec![
            ("zeta".into(), Json::Int(1)),
            ("alpha".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(value.render(), r#"{"zeta":1,"alpha":[1,2]}"#);
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let value = Json::Obj(vec![
            ("op".into(), Json::str("compile")),
            ("n".into(), Json::Int(-3)),
            ("big".into(), Json::UInt(u64::MAX)),
            ("f".into(), Json::Num(1.5)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("text".into(), Json::str("a\"b\\c\nd\u{1}é")),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&value.render()).unwrap(), value);
        assert_eq!(Json::parse(&value.render_pretty()).unwrap(), value);
    }

    #[test]
    fn parse_handles_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""A\n\t\/é😀""#).unwrap(),
            Json::str("A\n\t/é😀")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
        assert!(Json::parse("\"raw\ncontrol\"").is_err());
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Num(250.0));
        assert!(Json::parse("1e999").is_err(), "overflows to infinity");
        assert!(Json::parse("-").is_err());
        assert!(Json::parse("1.2.3").is_err());
        // JSON forbids leading zeros; std's parsers don't.
        assert!(Json::parse("007").is_err());
        assert!(Json::parse("01.5").is_err());
        assert!(Json::parse("-01").is_err());
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Num(-0.5));
        // …and signed \u escapes (from_str_radix would take them).
        assert!(Json::parse(r#""\u+041""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "[1 2]",
            "tru",
            "nullx",
            "{}{}",
            "{\"a\":}",
            "{1: 2}",
            "\"open",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
            assert!(err.offset <= bad.len());
        }
    }

    #[test]
    fn parse_enforces_the_depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_extract_scalars() {
        let value =
            Json::parse(r#"{"s":"x","b":true,"u":7,"i":-7,"f":16.0,"dup":1,"dup":2}"#).unwrap();
        assert_eq!(value.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(value.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(value.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(value.get("i").and_then(Json::as_i64), Some(-7));
        assert_eq!(value.get("i").and_then(Json::as_u64), None);
        assert_eq!(value.get("f").and_then(Json::as_u64), Some(16));
        // Type-boundary floats must be rejected, not saturated:
        // `u64::MAX as f64` rounds up to 2^64 (same for i64 and 2^63).
        assert_eq!(Json::Num(u64::MAX as f64).as_u64(), None);
        assert_eq!(Json::Num(i64::MAX as f64).as_i64(), None);
        assert_eq!(Json::Num(i64::MIN as f64).as_i64(), Some(i64::MIN));
        assert_eq!(Json::Num(2f64.powi(53)).as_u64(), Some(1 << 53));
        assert_eq!(
            value.get("dup").and_then(Json::as_u64),
            Some(1),
            "first wins"
        );
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn pretty_rendering_is_indented_and_reparsable_by_eye() {
        let value = Json::Obj(vec![
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("nested".into(), Json::Arr(vec![Json::Bool(false)])),
        ]);
        let pretty = value.render_pretty();
        assert!(pretty.contains("\"empty_obj\": {}"));
        assert!(pretty.contains("  \"nested\": [\n    false\n  ]"));
        assert!(pretty.ends_with("}\n"));
    }
}
