//! # raco-driver — end-to-end batch compilation pipeline
//!
//! The seed crates of this workspace each solve one layer of
//! *"Register-Constrained Address Computation in DSP Programs"* (Basu,
//! Leupers, Marwedel — DATE 1998): IR and DSL (`raco-ir`), path covers
//! (`raco-graph`), the two-phase allocator (`raco-core`), address-code
//! generation and simulation (`raco-agu`). This crate is the subsystem
//! that takes whole programs *through* that stack:
//!
//! * [`Pipeline`] — accepts DSL sources (strings, files or whole
//!   directories), fans their loops out across a scoped worker pool
//!   ([`pool`]), allocates, generates code and simulator-validates
//!   every loop, and assembles a structured [`CompilationReport`]
//!   (JSON and aligned-table renderings).
//! * [`AllocationCache`] — the hot path. Access patterns are
//!   canonicalized ([`raco_ir::canonical`]) so identical shapes across
//!   loops, units and requests hit a sharded concurrent memo instead
//!   of re-running branch-and-bound; cost curves additionally share
//!   entries between mirror-image patterns. Long-lived pipelines can
//!   bound the tables with [`CachePolicy::Bounded`] (FIFO eviction).
//! * [`persist`] — cache snapshots. The warm cache serializes to a
//!   dependency-free, checksummed binary file and restores entry by
//!   entry in a later process ([`Pipeline::save_cache`] /
//!   [`Pipeline::load_cache`], `raco … --cache-save/--cache-load`), so
//!   a restart is a warm boot instead of a cold start.
//! * [`json`] — the dependency-free JSON reader/writer behind report
//!   rendering and the `raco-serve` wire protocol.
//!
//! The pipeline is `Sync` and every `compile_*` method takes `&self`,
//! so one instance (and its warm cache) can serve many threads,
//! requests and connections; `raco-serve` is exactly that, with
//! [`Pipeline::compile_units_with`] applying per-request configuration
//! over the shared cache.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco_driver::Pipeline;
//! use raco_ir::AguSpec;
//!
//! let pipeline = Pipeline::new(AguSpec::new(4, 1)?);
//! let report = pipeline.compile_kernels(); // the whole DSP suite
//! assert_eq!(report.failed(), 0);
//! println!("{}", report.render_table());
//! # Ok(())
//! # }
//! ```
//!
//! A service-shaped pipeline bounds its cache and watches it work:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco_driver::{CachePolicy, Pipeline, PipelineConfig};
//! use raco_ir::AguSpec;
//!
//! let mut config = PipelineConfig::new(AguSpec::new(4, 1)?);
//! config.cache_policy = CachePolicy::Bounded(4096);
//! let pipeline = Pipeline::with_config(config);
//!
//! let source = "for (i = 0; i < 64; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }";
//! pipeline.compile_str("first", source)?;
//! let warm = pipeline.compile_str("second", source)?; // identical shape: all hits
//! assert!(warm.cache.allocation_hits > 0);
//! assert_eq!(warm.cache.allocation_evictions, 0); // far below the bound
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod json;
pub mod persist;
pub mod pipeline;
pub mod pool;
pub mod report;
pub mod timings;

pub use cache::{AllocationCache, CachePolicy, CacheStats};
pub use json::{Json, JsonParseError};
pub use persist::{LoadReport, PersistError, SaveReport};
pub use pipeline::{DriverError, Pipeline, PipelineConfig, NEST_VALIDATION_CAP, SOURCE_EXTENSIONS};
pub use pool::Parallelism;
pub use report::{CompilationReport, LoopFailure, LoopReport, UnitReport};
pub use timings::StageTiming;
