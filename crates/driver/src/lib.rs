//! # raco-driver — end-to-end batch compilation pipeline
//!
//! The seed crates of this workspace each solve one layer of
//! *"Register-Constrained Address Computation in DSP Programs"* (Basu,
//! Leupers, Marwedel — DATE 1998): IR and DSL (`raco-ir`), path covers
//! (`raco-graph`), the two-phase allocator (`raco-core`), address-code
//! generation and simulation (`raco-agu`). This crate is the subsystem
//! that takes whole programs *through* that stack:
//!
//! * [`Pipeline`] — accepts DSL sources (strings, files or whole
//!   directories), fans their loops out across a scoped worker pool
//!   ([`pool`]), allocates, generates code and simulator-validates
//!   every loop, and assembles a structured [`CompilationReport`]
//!   (JSON and aligned-table renderings).
//! * [`AllocationCache`] — the hot path. Access patterns are
//!   canonicalized ([`raco_ir::canonical`]) so identical shapes across
//!   loops, units and requests hit a sharded concurrent memo instead
//!   of re-running branch-and-bound; cost curves additionally share
//!   entries between mirror-image patterns.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco_driver::Pipeline;
//! use raco_ir::AguSpec;
//!
//! let pipeline = Pipeline::new(AguSpec::new(4, 1)?);
//! let report = pipeline.compile_kernels(); // the whole DSP suite
//! assert_eq!(report.failed(), 0);
//! println!("{}", report.render_table());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod json;
pub mod pipeline;
pub mod pool;
pub mod report;

pub use cache::{AllocationCache, CacheStats};
pub use pipeline::{DriverError, Pipeline, PipelineConfig, SOURCE_EXTENSIONS};
pub use pool::Parallelism;
pub use report::{CompilationReport, LoopFailure, LoopReport, UnitReport};
