//! The service loop: shard-per-core pipelines behind stdio or TCP.
//!
//! A [`Server`] owns a set of shards (the private `shard` module), each
//! with
//! its own warm [`Pipeline`], and routes every compile by a consistent
//! hash of its *canonical* cache key — so every repetition of a shape
//! lands on the shard that already paid for its allocation. In the
//! default single-shard configuration this degenerates to the original
//! design: one pipeline, one cache, zero handoff overhead.
//!
//! Transports:
//!
//! * [`Server::serve`] — a blocking request/response loop over any
//!   `BufRead`/`Write` pair (stdin/stdout in the CLI, in-memory
//!   buffers in tests).
//! * [`Server::serve_tcp`] — accepts TCP connections and runs the same
//!   loop per connection on a scoped thread, so concurrent clients
//!   compile in parallel against the shard set. A `shutdown` request
//!   stops the accept loop.
//!
//! The TCP tier enforces production bounds, each configured through
//! [`ServeOptions`]: a connection cap (over-limit connects get a
//! `busy` error and a clean close), a per-request read deadline (a
//! client with no complete request in time is answered with a
//! `read_deadline` error and reaped — the slow-loris fix), a compute
//! deadline (a compile that outruns it gets a `compute_deadline` error
//! while the shard finishes warming its cache in the background), and
//! bounded shard queues (a full queue sheds the request with a `shed`
//! error instead of queueing unbounded work).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use raco_driver::json::Json;
use raco_driver::{
    persist, AllocationCache, CompilationReport, LoadReport, PersistError, Pipeline,
    PipelineConfig, SaveReport,
};

use crate::metrics::{self, ServiceMetrics, INVALID_OP};
use crate::protocol::{self, Envelope, Request};
use crate::shard::{self, ShardSet, ShedError};

/// How long a drained connection thread may lag behind the stop flag:
/// blocked reads wake at this interval to check whether a shutdown was
/// requested elsewhere.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// How many further poll intervals a connection that has already
/// received *part* of a request line is given, after the stop flag
/// rises, to finish sending it. A half-received request is nearly in
/// flight — dropping it instantly would lose work the client believes
/// it submitted — but an unbounded wait would let one stalled client
/// wedge the drain, so the grace is bounded (10 × 50 ms = 500 ms).
const DRAIN_GRACE_POLLS: u32 = 10;

/// Accept-loop backoff bounds: an idle listener starts polling at the
/// floor and doubles up to the ceiling, and any accepted connection
/// resets it — so connect latency right after an idle stretch is
/// bounded by the ceiling (1 ms), not a fixed sleep.
const ACCEPT_BACKOFF_FLOOR: Duration = Duration::from_micros(25);
const ACCEPT_BACKOFF_CEIL: Duration = Duration::from_millis(1);

/// Maximum accepted request line length in bytes (1 MiB). Longer lines
/// are consumed and answered with an error response — the connection
/// survives, and a hostile or buggy client can no longer balloon server
/// memory by never sending a newline.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Default bound on queued requests per shard.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Default bound on concurrently served TCP connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// Operational limits of the serve tier. [`Default`] reproduces the
/// pre-shard behaviour exactly: one shard, inline execution, no
/// deadlines — existing embedders and tests see no change unless they
/// opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Shard workers to run; `0` means one per available core.
    pub shards: usize,
    /// Bound on queued requests per shard; beyond it requests are shed
    /// with an `ok:false` `shed` response.
    pub queue_depth: usize,
    /// A TCP connection with no *complete* request line within this
    /// window is answered with a `read_deadline` error and closed
    /// (slow-loris reaping). `None` disables reaping.
    pub read_deadline: Option<Duration>,
    /// A compile outrunning this budget gets a `compute_deadline`
    /// error; the connection survives and the shard finishes the
    /// compile in the background (warming its cache for a retry).
    /// `None` disables the deadline (and keeps single-shard servers on
    /// the inline zero-handoff path).
    pub compute_deadline: Option<Duration>,
    /// Bound on concurrently served TCP connections; over-limit
    /// connects get an `ok:false` `busy` response and a clean close.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 1,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            read_deadline: None,
            compute_deadline: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
        }
    }
}

/// Reads one newline-terminated line from `reader`, capping its length
/// at `limit` bytes (exclusive of the newline).
///
/// Returns `None` at end of input, otherwise a [`ReadOutcome`]: a line
/// within the cap, an oversized line (consumed to its terminating
/// newline — buffering at most one `BufRead` chunk at a time — so the
/// caller can keep serving the connection), or an idle timeout.
///
/// When `stop` is given, the underlying stream is expected to have a
/// read timeout: a timed-out read re-checks the flag and either keeps
/// waiting (flag clear) or winds the connection down (flag set). The
/// wind-down distinguishes how far a request got: a thread parked
/// *between* requests (nothing read yet) gives up immediately as a
/// clean end of input, while a thread that has already consumed part
/// of a line keeps waiting up to [`DRAIN_GRACE_POLLS`] more intervals
/// for the client to finish it — so a request the client is actively
/// sending still gets served, but a stalled half-line cannot wedge the
/// drain forever.
///
/// When `idle_deadline` is given, the whole read — from entry to the
/// terminating newline — must finish within it; otherwise the caller
/// gets [`ReadOutcome::IdleTimeout`]. This is what unseats a slow
/// loris: a client that connects and never completes a line used to
/// park its connection thread until shutdown.
fn read_limited_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
    stop: Option<&AtomicBool>,
    idle_deadline: Option<Duration>,
) -> io::Result<Option<ReadOutcome>> {
    let deadline = idle_deadline.map(|window| Instant::now() + window);
    let mut line: Vec<u8> = Vec::new();
    let mut total: u64 = 0;
    let mut saw_input = false;
    let mut grace = DRAIN_GRACE_POLLS;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        return Ok(Some(ReadOutcome::IdleTimeout));
                    }
                }
                match stop {
                    Some(flag) if flag.load(Ordering::Acquire) => {
                        if !saw_input || grace == 0 {
                            return Ok(None);
                        }
                        grace -= 1;
                        continue;
                    }
                    Some(_) => continue,
                    None => return Err(e),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // End of input; the final line may lack its newline.
            if !saw_input {
                return Ok(None);
            }
            break;
        }
        saw_input = true;
        let (used, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        let content = used - usize::from(done);
        total += content as u64;
        if total <= limit as u64 {
            line.extend_from_slice(&chunk[..content]);
        } else {
            // Over the cap: stop accumulating, keep draining the line.
            line.clear();
        }
        reader.consume(used);
        if done {
            break;
        }
    }
    if total > limit as u64 {
        Ok(Some(ReadOutcome::Oversized(total)))
    } else {
        Ok(Some(ReadOutcome::Line(
            String::from_utf8_lossy(&line).into_owned(),
        )))
    }
}

/// What one bounded line read produced.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReadOutcome {
    /// A complete line within the cap.
    Line(String),
    /// A line of this many bytes exceeded the cap (fully drained).
    Oversized(u64),
    /// No complete line arrived within the idle deadline.
    IdleTimeout,
}

/// One response line plus the connection's fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The single-line JSON response (no trailing newline).
    pub line: String,
    /// `true` if the client asked this connection to close.
    pub shutdown: bool,
}

/// What a routed compile runs on its shard.
enum ComputeWork {
    /// Named DSL units (a `compile` request, or one named kernel).
    Units(Vec<(String, String)>),
    /// The whole built-in kernel suite.
    KernelSuite,
}

/// Why a routed compile produced no report.
enum ComputeError {
    /// The pipeline itself failed (parse error, driver error…).
    Driver(String),
    /// The routed shard's queue was full.
    Shed(ShedError),
    /// The compile outran the compute deadline.
    Deadline(Duration),
}

/// Runs one unit of compute work against a shard's pipeline.
fn run_work(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    work: &ComputeWork,
) -> Result<CompilationReport, String> {
    match work {
        ComputeWork::Units(units) => pipeline
            .compile_units_with(config, units)
            .map_err(|e| e.to_string()),
        ComputeWork::KernelSuite => Ok(pipeline.compile_kernels_with(config)),
    }
}

/// A long-lived compile service over a consistent-hash shard set.
#[derive(Debug)]
pub struct Server {
    shards: ShardSet,
    options: ServeOptions,
    /// Where graceful shutdowns (and default-path `save_cache`
    /// requests) snapshot the warm cache; `None` disables both.
    cache_save_path: Option<PathBuf>,
    /// Per-op request counters and latency histograms (the `metrics`
    /// op reads these; every response carries their `elapsed_us`).
    metrics: ServiceMetrics,
}

impl Server {
    /// A server whose defaults (machine, options, cache policy) come
    /// from `config`. Per-request knobs override everything except the
    /// cache policy, which is fixed for the server's lifetime.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_options(config, ServeOptions::default())
    }

    /// A server with explicit operational limits: shard count, queue
    /// depth, read/compute deadlines and the connection cap.
    pub fn with_options(config: PipelineConfig, options: ServeOptions) -> Self {
        let mut options = options;
        if options.shards == 0 {
            options.shards = std::thread::available_parallelism().map_or(1, |n| n.get());
        }
        options.queue_depth = options.queue_depth.max(1);
        options.max_connections = options.max_connections.max(1);
        // One shard with no compute deadline needs no worker handoff:
        // jobs run inline on the submitting thread, exactly like the
        // pre-shard server (loopback benches and embedders keep their
        // zero-handoff latency).
        let inline = options.shards == 1 && options.compute_deadline.is_none();
        let shards = ShardSet::new(&config, options.shards, options.queue_depth, inline);
        Server {
            shards,
            options,
            cache_save_path: None,
            metrics: ServiceMetrics::new(),
        }
    }

    /// Wraps an existing pipeline (e.g. one pre-warmed by a batch run
    /// or one that loaded a cache snapshot at boot) as a single-shard
    /// inline server.
    pub fn with_pipeline(pipeline: Pipeline) -> Self {
        let options = ServeOptions::default();
        Server {
            shards: ShardSet::from_pipeline(pipeline, options.queue_depth),
            options,
            cache_save_path: None,
            metrics: ServiceMetrics::new(),
        }
    }

    /// Snapshot the warm cache to `path` on graceful shutdown (builder
    /// style). The same path backs `save_cache` requests that do not
    /// name their own.
    #[must_use]
    pub fn with_cache_save_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_save_path = Some(path.into());
        self
    }

    /// The configured shutdown-snapshot path, if any.
    pub fn cache_save_path(&self) -> Option<&std::path::Path> {
        self.cache_save_path.as_deref()
    }

    /// The server's operational limits (normalized: `shards` is the
    /// resolved count, never 0).
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Shard 0's pipeline. With the default single shard this is *the*
    /// pipeline, exactly as before sharding; with more shards it is
    /// only one slice of the cache — use
    /// [`cache_stats`](Self::cache_stats) for fleet-wide numbers.
    pub fn pipeline(&self) -> &Pipeline {
        self.shards.first_pipeline()
    }

    /// Cache statistics aggregated across every shard.
    pub fn cache_stats(&self) -> raco_driver::CacheStats {
        self.shards.aggregate_cache_stats()
    }

    /// Seeds **every** shard's pipeline from the snapshot at `path`, so
    /// each shard boots warm whatever slice of the keyspace it owns.
    ///
    /// # Errors
    ///
    /// Returns the first shard's load failure (shards are seeded in
    /// order; a failure leaves later shards cold).
    pub fn load_cache(&self, path: &std::path::Path) -> Result<Vec<LoadReport>, PersistError> {
        self.shards
            .shards()
            .iter()
            .map(|shard| shard.pipeline.load_cache(path))
            .collect()
    }

    /// Snapshots the union of every shard's cache to `path`. A
    /// single-shard server saves its pipeline's cache directly
    /// (preserving that cache's `persisted` accounting); a sharded one
    /// folds all shards into a fresh cache first, so the snapshot
    /// warms a later boot of *any* shard count.
    ///
    /// # Errors
    ///
    /// Returns the underlying persistence failure.
    pub fn save_cache_merged(&self, path: &std::path::Path) -> Result<SaveReport, PersistError> {
        if self.shards.len() == 1 {
            return self.shards.first_pipeline().save_cache(path);
        }
        let merged = AllocationCache::new();
        for shard in self.shards.shards() {
            merged.absorb_entries(shard.pipeline.cache());
        }
        persist::save(&merged, path)
    }

    /// Writes the shutdown snapshot, if one is configured. Both serve
    /// loops call this once their last connection has drained; a
    /// snapshot failure is reported on stderr but never turns a clean
    /// shutdown into an error (the cache is an optimization — losing
    /// it must not fail the service).
    fn snapshot_on_shutdown(&self) {
        if let Some(path) = &self.cache_save_path {
            match self.save_cache_merged(path) {
                Ok(report) => {
                    eprintln!("raco serve: cache snapshot {} ({report})", path.display());
                }
                Err(error) => eprintln!("raco serve: cache snapshot failed: {error}"),
            }
        }
    }

    /// Handles one request line and produces one response line.
    ///
    /// This is the transport-free core: both [`serve`](Self::serve)
    /// and [`serve_tcp`](Self::serve_tcp) are loops around it, and
    /// tests and benches call it directly (a "loopback" client).
    ///
    /// Every request is counted and timed into the server's per-op
    /// metrics (see the `metrics` op), and every response line gets an
    /// `elapsed_us` field with its end-to-end wall time.
    pub fn handle_line(&self, line: &str) -> Reply {
        let started = Instant::now();
        self.metrics.begin();
        let (op, mut reply) = self.dispatch(line);
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        self.metrics.finish(op, elapsed_ns);
        reply.line = attach_elapsed(reply.line, elapsed_ns);
        reply
    }

    /// Routes one compile to its shard and waits for the report —
    /// inline on the calling thread for a single-shard no-deadline
    /// server, through the shard's bounded queue otherwise.
    fn execute(
        &self,
        key: u64,
        config: PipelineConfig,
        work: ComputeWork,
    ) -> Result<CompilationReport, ComputeError> {
        let shard = self.shards.route(key);
        if self.shards.is_inline() {
            let mut out = None;
            shard.run_inline(|pipeline| out = Some(run_work(pipeline, &config, &work)));
            return out
                .expect("inline job ran on the calling thread")
                .map_err(ComputeError::Driver);
        }
        let (tx, rx) = mpsc::sync_channel(1);
        shard
            .submit(Box::new(move |pipeline| {
                // The receiver may have walked away on a compute
                // deadline; the compile still warmed the shard cache.
                let _ = tx.send(run_work(pipeline, &config, &work));
            }))
            .map_err(ComputeError::Shed)?;
        let result = match self.options.compute_deadline {
            Some(deadline) => match rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err(ComputeError::Deadline(deadline))
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Err("shard worker unavailable".to_owned())
                }
            },
            None => rx
                .recv()
                .unwrap_or_else(|_| Err("shard worker unavailable".to_owned())),
        };
        result.map_err(ComputeError::Driver)
    }

    /// Renders a routed compile's failure, counting sheds and deadline
    /// hits into the service metrics.
    fn compute_error_line(&self, id: &Option<Json>, error: &ComputeError) -> String {
        match error {
            ComputeError::Driver(message) => protocol::error_line(id, message),
            ComputeError::Shed(shed) => {
                self.metrics.note_shed_queue();
                protocol::error_kind_line(
                    id,
                    "shed",
                    &format!(
                        "shard {} queue full (depth {}); request shed — retry with backoff",
                        shed.shard, shed.depth
                    ),
                )
            }
            ComputeError::Deadline(deadline) => {
                self.metrics.note_compute_deadline();
                protocol::error_kind_line(
                    id,
                    "compute_deadline",
                    &format!(
                        "compile exceeded the {} ms compute deadline; the shard keeps \
                         warming its cache in the background, so a retry may hit",
                        deadline.as_millis()
                    ),
                )
            }
        }
    }

    /// The per-shard `metrics` breakdown: request count, compute
    /// latency and the shard's own cache statistics (whose hit rates
    /// show consistent routing keeping each slice hot).
    fn shards_json(&self) -> Json {
        Json::Arr(
            self.shards
                .shards()
                .iter()
                .map(|shard| {
                    let stats = shard.pipeline.cache_stats();
                    let mut fields = vec![
                        ("id".to_owned(), Json::UInt(shard.index as u64)),
                        (
                            "requests".to_owned(),
                            Json::UInt(shard.executed.load(Ordering::Relaxed)),
                        ),
                        ("hit_rate".to_owned(), Json::Num(stats.hit_rate())),
                        ("cache".to_owned(), protocol::stats_json(&stats)),
                    ];
                    let latency = shard.latency.snapshot();
                    if latency.count > 0 {
                        fields.push(("compute_us".to_owned(), metrics::histogram_json(&latency)));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }

    /// Decodes and executes one request; returns the op label the
    /// request is accounted under plus the raw (un-timed) reply.
    fn dispatch(&self, line: &str) -> (&'static str, Reply) {
        let Envelope { id, request, knobs } = match protocol::parse_line(line) {
            Ok(envelope) => envelope,
            Err(e) => {
                return (
                    INVALID_OP,
                    Reply {
                        line: protocol::error_line(&e.id, &e.message),
                        shutdown: false,
                    },
                )
            }
        };
        let op = op_label(&request);
        let reply = |line: String| Reply {
            line,
            shutdown: false,
        };
        // Serve responses omit the per-stage `timings` array unless the
        // request opts in: rendering it costs more than a warm compile,
        // and the `metrics` op serves accumulated stage timings anyway.
        let report_reply = |mut report: raco_driver::CompilationReport| {
            if knobs.timings != Some(true) {
                report.timings.clear();
            }
            reply(protocol::report_line(&id, &report))
        };
        let base_config = self.shards.first_pipeline().config();
        let out = match request {
            Request::Compile { name, source } => {
                let config = match knobs.apply(base_config) {
                    Ok(config) => config,
                    Err(message) => return (op, reply(protocol::error_line(&id, &message))),
                };
                let key = shard::compile_route_key(&source, &config);
                match self.execute(key, config, ComputeWork::Units(vec![(name, source)])) {
                    Ok(report) => report_reply(report),
                    Err(e) => reply(self.compute_error_line(&id, &e)),
                }
            }
            Request::Kernels { kernel } => {
                let config = match knobs.apply(base_config) {
                    Ok(config) => config,
                    Err(message) => return (op, reply(protocol::error_line(&id, &message))),
                };
                let key = shard::kernels_route_key(kernel.as_deref(), &config);
                let work = match kernel {
                    None => ComputeWork::KernelSuite,
                    Some(name) => {
                        let suite = raco_kernels::suite();
                        let Some(kernel) = suite.iter().find(|k| k.name() == name) else {
                            let known: Vec<&str> = suite.iter().map(|k| k.name()).collect();
                            return (
                                op,
                                reply(protocol::error_line(
                                    &id,
                                    &format!(
                                        "unknown kernel `{name}` (known: {})",
                                        known.join(", ")
                                    ),
                                )),
                            );
                        };
                        ComputeWork::Units(vec![(name.clone(), kernel.source().to_owned())])
                    }
                };
                match self.execute(key, config, work) {
                    Ok(report) => report_reply(report),
                    Err(e) => reply(self.compute_error_line(&id, &e)),
                }
            }
            Request::Stats => {
                // Cache counters first (their layout is load-bearing
                // for scripted clients), then the service fields.
                let Json::Obj(mut fields) = protocol::stats_json(&self.cache_stats()) else {
                    unreachable!("stats_json returns an object")
                };
                fields.extend(self.metrics.stats_fields());
                reply(protocol::payload_line(
                    &id,
                    vec![("stats".to_owned(), Json::Obj(fields))],
                ))
            }
            Request::Metrics => {
                let shards = (self.shards.len() > 1).then(|| self.shards_json());
                let payload = self.metrics.payload(&self.cache_stats(), shards);
                reply(protocol::payload_line(
                    &id,
                    vec![("metrics".to_owned(), payload)],
                ))
            }
            Request::ClearCache => {
                for shard in self.shards.shards() {
                    shard.pipeline.clear_cache();
                }
                reply(protocol::ack_line(&id, "cleared"))
            }
            Request::SaveCache { path } => {
                let target = match (&path, &self.cache_save_path) {
                    (Some(path), _) => PathBuf::from(path),
                    (None, Some(default)) => default.clone(),
                    (None, None) => {
                        return (
                            op,
                            reply(protocol::error_line(
                                &id,
                                "save_cache needs a `path` (the server has no --cache-save \
                                 default)",
                            )),
                        )
                    }
                };
                match self.save_cache_merged(&target) {
                    Ok(report) => reply(protocol::saved_line(&id, &target, &report)),
                    Err(error) => reply(protocol::error_line(&id, &error.to_string())),
                }
            }
            Request::Ping => reply(protocol::ack_line(&id, "pong")),
            Request::Shutdown => Reply {
                line: protocol::ack_line(&id, "shutdown"),
                shutdown: true,
            },
        };
        (op, out)
    }

    /// Produces the error reply for a request line of `total` bytes that
    /// exceeded [`MAX_REQUEST_LINE`]. Counted under the `invalid` op
    /// like any other undecodable request.
    fn oversized_reply(&self, total: u64) -> Reply {
        let started = Instant::now();
        self.metrics.begin();
        let line = protocol::error_line(
            &None,
            &format!("request line of {total} bytes exceeds the {MAX_REQUEST_LINE}-byte limit"),
        );
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        self.metrics.finish(INVALID_OP, elapsed_ns);
        Reply {
            line: attach_elapsed(line, elapsed_ns),
            shutdown: false,
        }
    }

    /// Serves NDJSON requests from `input`, writing responses to
    /// `output`, until a `shutdown` request or end of input. Blank
    /// lines are skipped; lines longer than [`MAX_REQUEST_LINE`] get an
    /// error response and the session continues; responses are flushed
    /// per request so a pipe-connected client never deadlocks waiting
    /// on a buffer. Both exits are graceful: if a cache-save path is
    /// configured (see [`with_cache_save_path`](Self::with_cache_save_path))
    /// the warm cache is snapshotted before returning.
    ///
    /// # Errors
    ///
    /// Returns the first transport I/O error (protocol-level problems
    /// are error *responses*, not errors here). The shutdown snapshot
    /// is still attempted on the error path — whatever warmth was
    /// accumulated is worth keeping.
    pub fn serve<R: BufRead, W: Write>(&self, mut input: R, mut output: W) -> io::Result<()> {
        let result = self.serve_inner(&mut input, &mut output);
        self.snapshot_on_shutdown();
        result
    }

    fn serve_inner<R: BufRead, W: Write>(&self, input: &mut R, output: &mut W) -> io::Result<()> {
        // Stdio has no read timeouts, so the idle deadline does not
        // apply here: a pipe's writer is the server's own supervisor,
        // not an untrusted remote peer.
        while let Some(read) = read_limited_line(input, MAX_REQUEST_LINE, None, None)? {
            let reply = match read {
                ReadOutcome::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line(&line)
                }
                ReadOutcome::Oversized(total) => self.oversized_reply(total),
                ReadOutcome::IdleTimeout => unreachable!("no idle deadline on stdio"),
            };
            output.write_all(reply.line.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if reply.shutdown {
                break;
            }
        }
        Ok(())
    }

    /// Accepts connections on `listener` and serves each on its own
    /// scoped thread against the shard set, until any client sends
    /// `shutdown`.
    ///
    /// Operational bounds ([`ServeOptions`]) are enforced here: at most
    /// `max_connections` concurrent connections (over-limit connects
    /// are answered with a `busy` error and closed), and per-connection
    /// read deadlines (enforced by the capped line reader's idle
    /// handling).
    ///
    /// Shutdown is a **graceful drain**: the accept loop stops, every
    /// connection thread finishes the request it is currently
    /// compiling and writes its response, threads parked in blocking
    /// reads (idle keep-alive clients) notice the stop flag within a
    /// short poll interval (50 ms) and close, and only then — after
    /// every connection has drained — is the cache snapshot written
    /// (when a save path is configured).
    ///
    /// # Errors
    ///
    /// Returns the first *accept* error. Per-connection I/O errors
    /// only end that connection.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        // Nonblocking accept so the loop can observe the stop flag a
        // shutdown request (on any connection thread) sets.
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        let active = AtomicUsize::new(0);
        let result = std::thread::scope(|scope| {
            let mut backoff = ACCEPT_BACKOFF_FLOOR;
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        backoff = ACCEPT_BACKOFF_FLOOR;
                        if active.load(Ordering::Acquire) >= self.options.max_connections {
                            self.metrics.note_shed_connection();
                            self.refuse_connection(&stream);
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let stop = &stop;
                        let active = &active;
                        scope.spawn(move || {
                            let shutdown = self.serve_stream(&stream, stop);
                            active.fetch_sub(1, Ordering::AcqRel);
                            if shutdown {
                                stop.store(true, Ordering::Release);
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Exponential backoff from a 25 µs floor to a
                        // 1 ms ceiling (reset on every accept): a burst
                        // arriving after an idle stretch waits at most
                        // the ceiling, where a fixed 5 ms sleep used to
                        // put a hard floor under connect latency.
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_CEIL);
                    }
                    Err(e) => return Err(e),
                }
            }
            // Leaving the scope joins every connection thread: this is
            // the drain barrier in-flight requests finish behind.
            Ok(())
        });
        self.snapshot_on_shutdown();
        result
    }

    /// Answers an over-limit connection with a `busy` error and drops
    /// it. Best-effort: a peer that cannot take the write is simply
    /// closed.
    fn refuse_connection(&self, stream: &TcpStream) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let mut line = protocol::error_kind_line(
            &None,
            "busy",
            &format!(
                "server is at its connection limit ({}); retry with backoff",
                self.options.max_connections
            ),
        );
        line.push('\n');
        let mut writer = stream;
        let _ = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush());
    }

    /// Serves one TCP connection; `true` if the client asked the whole
    /// server to shut down. The read side polls `stop` (via a read
    /// timeout) so a drain elsewhere closes this connection between
    /// requests instead of waiting for the client to hang up, and — in
    /// the same polling — enforces the read deadline: a client with no
    /// complete request within it gets a `read_deadline` error and is
    /// closed, freeing the thread a slow loris used to pin.
    fn serve_stream(&self, stream: &TcpStream, stop: &AtomicBool) -> bool {
        // Blocking per-connection I/O (the listener's nonblocking flag
        // is inherited on some platforms) with a short read timeout —
        // the timeout is what turns a parked idle connection into one
        // that notices a server-wide drain or an expired read deadline.
        if stream.set_nonblocking(false).is_err() {
            return false;
        }
        if stream.set_read_timeout(Some(DRAIN_POLL)).is_err() {
            return false;
        }
        // Replies are written as one buffer, but disable Nagle anyway:
        // with it on, any reply split across writes has its tail held
        // hostage by the peer's delayed ACK (~40 ms on Linux) — fatal
        // to request/response latency on a warm cache.
        let _ = stream.set_nodelay(true);
        let mut writer = match stream.try_clone() {
            Ok(writer) => writer,
            Err(_) => return false,
        };
        let mut reader = BufReader::new(stream);
        let mut shutdown = false;
        // Per-connection I/O errors just end this connection.
        while let Ok(Some(read)) = read_limited_line(
            &mut reader,
            MAX_REQUEST_LINE,
            Some(stop),
            self.options.read_deadline,
        ) {
            let reply = match read {
                ReadOutcome::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line(&line)
                }
                ReadOutcome::Oversized(total) => self.oversized_reply(total),
                ReadOutcome::IdleTimeout => {
                    // The slow-loris reap: answer, then close. After a
                    // mid-line stall the stream offers no resync point,
                    // and an idle keep-alive past the deadline has had
                    // its chance — either way the thread is reclaimed.
                    self.metrics.note_read_deadline();
                    let deadline = self
                        .options
                        .read_deadline
                        .expect("idle timeout implies a deadline");
                    let mut line = protocol::error_kind_line(
                        &None,
                        "read_deadline",
                        &format!(
                            "no complete request within the {} ms read deadline; closing",
                            deadline.as_millis()
                        ),
                    );
                    line.push('\n');
                    let _ = writer
                        .write_all(line.as_bytes())
                        .and_then(|()| writer.flush());
                    break;
                }
            };
            // One framed write per reply: a reply split across writes
            // would interact with Nagle + delayed ACKs (see above).
            let mut framed = reply.line;
            framed.push('\n');
            if writer
                .write_all(framed.as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            if reply.shutdown {
                shutdown = true;
                break;
            }
        }
        shutdown
    }
}

/// The op name a decoded request is accounted under.
fn op_label(request: &Request) -> &'static str {
    match request {
        Request::Compile { .. } => "compile",
        Request::Kernels { .. } => "kernels",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::ClearCache => "clear_cache",
        Request::SaveCache { .. } => "save_cache",
        Request::Ping => "ping",
        Request::Shutdown => "shutdown",
    }
}

/// Appends `"elapsed_us":…` as the final field of a rendered response
/// object. String surgery instead of a reparse: response lines are
/// always single-line JSON objects, so the closing `}` is the last byte.
fn attach_elapsed(mut line: String, elapsed_ns: u64) -> String {
    use std::fmt::Write;
    debug_assert!(line.ends_with('}'), "response must be a JSON object");
    line.pop();
    // Integer formatting (µs + fixed three fractional digits) rather
    // than an f64 render: this runs on every response, and float
    // formatting costs several times an integer write.
    let _ = write!(
        line,
        ",\"elapsed_us\":{}.{:03}}}",
        elapsed_ns / 1_000,
        elapsed_ns % 1_000
    );
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_driver::json::Json;
    use raco_ir::AguSpec;

    fn server() -> Server {
        Server::new(PipelineConfig::new(AguSpec::new(4, 1).unwrap()))
    }

    fn parsed(reply: &Reply) -> Json {
        Json::parse(&reply.line).expect("response is valid JSON")
    }

    #[test]
    fn ping_and_shutdown_round_trip() {
        let server = server();
        let pong = server.handle_line(r#"{"op":"ping","id":1}"#);
        assert!(
            pong.line
                .starts_with(r#"{"id":1,"ok":true,"pong":true,"elapsed_us":"#),
            "{}",
            pong.line
        );
        assert!(!pong.shutdown);
        let bye = server.handle_line(r#"{"op":"shutdown"}"#);
        assert!(bye.shutdown);
        assert!(
            bye.line
                .starts_with(r#"{"ok":true,"shutdown":true,"elapsed_us":"#),
            "{}",
            bye.line
        );
    }

    #[test]
    fn every_response_carries_elapsed_us() {
        let server = server();
        for line in [
            r#"{"op":"ping"}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"metrics"}"#,
            "not json",
        ] {
            let reply = server.handle_line(line);
            let json = parsed(&reply);
            assert!(
                json.get("elapsed_us").is_some(),
                "`{line}` response lacks elapsed_us: {}",
                reply.line
            );
        }
        let oversized = server.oversized_reply(MAX_REQUEST_LINE as u64 + 1);
        assert!(parsed(&oversized).get("elapsed_us").is_some());
    }

    #[test]
    fn metrics_op_reports_latency_and_pipeline_stages() {
        let server = server();
        let compile =
            r#"{"op":"compile","source":"for (i = 0; i < 8; i++) { y[i] = x[i] + x[i+1]; }"}"#;
        server.handle_line(compile);
        server.handle_line(compile);
        let json = parsed(&server.handle_line(r#"{"op":"metrics","id":5}"#));
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        let metrics = json.get("metrics").expect("metrics payload");
        assert!(metrics.get("uptime_ms").and_then(Json::as_u64).is_some());

        let requests = metrics.get("requests").unwrap();
        assert_eq!(requests.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(
            requests
                .get("by_op")
                .and_then(|o| o.get("compile"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // The metrics request itself is still in flight while its own
        // payload is rendered.
        assert_eq!(requests.get("in_flight").and_then(Json::as_i64), Some(1));

        let compile_latency = metrics
            .get("latency_us")
            .and_then(|l| l.get("compile"))
            .expect("compile latency histogram");
        assert_eq!(compile_latency.get("count").and_then(Json::as_u64), Some(2));
        assert!(compile_latency.get("p50_us").is_some());
        assert!(compile_latency.get("p99_us").is_some());

        // The compiles above drove the whole pipeline, so accumulated
        // per-stage timings are present.
        let pipeline = metrics.get("pipeline_us").expect("pipeline stages");
        for stage in ["pipeline.parse", "pipeline.codegen", "pipeline.simulate"] {
            let entry = pipeline.get(stage).unwrap_or_else(|| panic!("{stage}"));
            assert!(entry.get("count").and_then(Json::as_u64).unwrap() >= 2);
        }

        // Zero sheds and deadline hits, but the counters are present.
        let shed = metrics.get("shed").expect("shed counters");
        assert_eq!(shed.get("connections").and_then(Json::as_u64), Some(0));
        assert_eq!(shed.get("queue").and_then(Json::as_u64), Some(0));
        let deadlines = metrics.get("deadlines").expect("deadline counters");
        assert_eq!(deadlines.get("read").and_then(Json::as_u64), Some(0));
        assert_eq!(deadlines.get("compute").and_then(Json::as_u64), Some(0));
        // A single-shard server reports no per-shard breakdown.
        assert!(metrics.get("shards").is_none());

        let cache = metrics.get("cache").expect("cache rates");
        assert!(cache.get("hit_rate").is_some());
        assert!(
            cache.get("allocation_hits").and_then(Json::as_u64).unwrap() > 0,
            "second identical compile hits the warm cache"
        );
    }

    #[test]
    fn sharded_metrics_report_per_shard_breakdown() {
        let server = Server::with_options(
            PipelineConfig::new(AguSpec::new(4, 1).unwrap()),
            ServeOptions {
                shards: 3,
                ..ServeOptions::default()
            },
        );
        let compile =
            r#"{"op":"compile","source":"for (i = 0; i < 8; i++) { y[i] = x[i] + x[i+1]; }"}"#;
        let first = parsed(&server.handle_line(compile));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        server.handle_line(compile);
        let json = parsed(&server.handle_line(r#"{"op":"metrics"}"#));
        let metrics = json.get("metrics").expect("metrics payload");
        let Some(Json::Arr(shards)) = metrics.get("shards") else {
            panic!("sharded server reports a shards array: {json:?}");
        };
        assert_eq!(shards.len(), 3);
        let executed: u64 = shards
            .iter()
            .map(|s| s.get("requests").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(executed, 2, "both compiles executed on some shard");
        // Consistent routing: the identical source hit exactly one shard.
        let busy: Vec<u64> = shards
            .iter()
            .map(|s| s.get("requests").and_then(Json::as_u64).unwrap())
            .filter(|&n| n > 0)
            .collect();
        assert_eq!(busy, vec![2], "one shard took both identical compiles");
        // And the aggregate cache saw the second compile hit.
        let cache = metrics.get("cache").expect("aggregate cache");
        assert!(cache.get("allocation_hits").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn stats_keeps_cache_layout_and_adds_service_counters() {
        let server = server();
        server.handle_line(r#"{"op":"ping"}"#);
        let reply = server.handle_line(r#"{"op":"stats","id":2}"#);
        // Scripted clients key on the cache counters leading the
        // payload, so the service fields must come after them.
        assert!(
            reply.line.contains(r#""stats":{"allocation_hits":"#),
            "{}",
            reply.line
        );
        let stats = parsed(&reply).get("stats").cloned().expect("stats payload");
        assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some());
        assert_eq!(stats.get("requests_total").and_then(Json::as_u64), Some(1));
        assert_eq!(
            stats
                .get("requests_by_op")
                .and_then(|o| o.get("ping"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn compile_produces_a_report_envelope() {
        let server = server();
        let reply = server.handle_line(
            r#"{"id":9,"op":"compile","name":"tap3",
                "source":"for (i = 1; i < 100; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }"}"#,
        );
        let json = parsed(&reply);
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(9));
        let report = json.get("report").expect("report payload");
        assert_eq!(report.get("failed").and_then(Json::as_u64), Some(0));
        assert_eq!(
            report
                .get("units")
                .and_then(|u| match u {
                    Json::Arr(items) => items.first(),
                    _ => None,
                })
                .and_then(|u| u.get("name"))
                .and_then(Json::as_str),
            Some("tap3")
        );
    }

    #[test]
    fn report_timings_are_opt_in_per_request() {
        let server = server();
        let source = r#""source":"for (i = 1; i < 16; i++) { y[i] = x[i-1] + x[i]; }""#;
        // By default the response's report carries no timings array
        // (the key is omitted entirely, not rendered empty)...
        let bare = parsed(&server.handle_line(&format!(r#"{{"op":"compile",{source}}}"#)));
        assert_eq!(bare.get("ok"), Some(&Json::Bool(true)));
        assert!(bare.get("report").unwrap().get("timings").is_none());
        // ...and `timings: true` keeps it.
        let timed =
            parsed(&server.handle_line(&format!(r#"{{"op":"compile",{source},"timings":true}}"#)));
        let Some(Json::Arr(stages)) = timed.get("report").unwrap().get("timings") else {
            panic!("timings array must be present when requested");
        };
        assert!(!stages.is_empty());
        assert!(stages
            .iter()
            .any(|s| s.get("stage").and_then(Json::as_str) == Some("parse")));
    }

    #[test]
    fn per_request_knobs_change_the_machine() {
        let server = server();
        let reply = server.handle_line(
            r#"{"op":"compile","source":"for (i = 0; i < 8; i++) { s += x[i]; }","registers":2,"modify":3}"#,
        );
        let json = parsed(&reply);
        let machine = json.get("report").and_then(|r| r.get("machine")).unwrap();
        assert_eq!(
            machine.get("address_registers").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(machine.get("modify_range").and_then(Json::as_u64), Some(3));
        // The server's defaults are untouched.
        assert_eq!(server.pipeline().config().agu.address_registers(), 4);
    }

    #[test]
    fn named_kernels_compile_and_unknown_names_error() {
        let server = server();
        let ok = parsed(&server.handle_line(r#"{"op":"kernels","kernel":"paper_example"}"#));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            ok.get("report")
                .and_then(|r| r.get("loops"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let err = parsed(&server.handle_line(r#"{"op":"kernels","kernel":"nope"}"#));
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        let message = err.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("unknown kernel `nope`"));
        assert!(message.contains("paper_example"), "lists known kernels");
    }

    #[test]
    fn read_limited_line_caps_and_resynchronizes() {
        let input = format!("short\n{}\nafter\n", "x".repeat(100));
        let mut reader = std::io::BufReader::with_capacity(16, input.as_bytes());
        assert_eq!(
            read_limited_line(&mut reader, 40, None, None).unwrap(),
            Some(ReadOutcome::Line("short".to_owned()))
        );
        // The long line reports its true length and is fully drained …
        assert_eq!(
            read_limited_line(&mut reader, 40, None, None).unwrap(),
            Some(ReadOutcome::Oversized(100))
        );
        // … so the next read picks up exactly at the following line.
        assert_eq!(
            read_limited_line(&mut reader, 40, None, None).unwrap(),
            Some(ReadOutcome::Line("after".to_owned()))
        );
        assert_eq!(
            read_limited_line(&mut reader, 40, None, None).unwrap(),
            None
        );
        // A final line without a newline still arrives.
        let mut reader = std::io::BufReader::new("tail".as_bytes());
        assert_eq!(
            read_limited_line(&mut reader, 40, None, None).unwrap(),
            Some(ReadOutcome::Line("tail".to_owned()))
        );
    }

    #[test]
    fn sharded_compiles_match_single_shard_reports() {
        let config = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
        let single = Server::new(config.clone());
        let sharded = Server::with_options(
            config,
            ServeOptions {
                shards: 4,
                ..ServeOptions::default()
            },
        );
        let request = r#"{"id":1,"op":"compile","source":"for (i = 0; i < 32; i++) { y[i] = x[i-2] + x[i] + x[i+2]; }"}"#;
        let strip = |json: Json| {
            let Json::Obj(fields) = json else {
                panic!("object")
            };
            Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "elapsed_us")
                    .map(|(k, v)| {
                        if k == "report" {
                            let Json::Obj(inner) = v else {
                                panic!("report")
                            };
                            (
                                k,
                                Json::Obj(
                                    inner
                                        .into_iter()
                                        .filter(|(k, _)| {
                                            !matches!(
                                                k.as_str(),
                                                "elapsed_us"
                                                    | "loops_per_second"
                                                    | "cache"
                                                    | "threads"
                                            )
                                        })
                                        .collect(),
                                ),
                            )
                        } else {
                            (k, v)
                        }
                    })
                    .collect(),
            )
        };
        let a = strip(parsed(&single.handle_line(request)));
        let b = strip(parsed(&sharded.handle_line(request)));
        assert_eq!(a, b, "routing must not change compile results");
    }

    #[test]
    fn compute_deadline_returns_named_error_and_keeps_serving() {
        let server = Server::with_options(
            PipelineConfig::new(AguSpec::new(4, 1).unwrap()),
            ServeOptions {
                compute_deadline: Some(Duration::from_nanos(1)),
                ..ServeOptions::default()
            },
        );
        // A 1 ns budget cannot cover a cold compile: named error.
        let reply = parsed(&server.handle_line(
            r#"{"id":3,"op":"compile","source":"for (i = 0; i < 64; i++) { y[i] = x[i-3] + x[i] + x[i+3]; }"}"#,
        ));
        assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            reply.get("error_kind").and_then(Json::as_str),
            Some("compute_deadline")
        );
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(3));
        // The server keeps serving (the "connection" survives)…
        let pong = parsed(&server.handle_line(r#"{"op":"ping"}"#));
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        // …and metrics recorded the deadline.
        let metrics = parsed(&server.handle_line(r#"{"op":"metrics"}"#));
        let deadlines = metrics
            .get("metrics")
            .and_then(|m| m.get("deadlines"))
            .expect("deadline counters");
        assert!(deadlines.get("compute").and_then(Json::as_u64).unwrap() >= 1);
    }

    #[test]
    fn bad_requests_never_shut_the_connection() {
        let server = server();
        for bad in [
            "not json",
            r#"{"op":"compile","source":"for (i = 0; i++) {"}"#,
            r#"{"op":"compile","source":"x","registers":0}"#,
        ] {
            let reply = server.handle_line(bad);
            assert!(!reply.shutdown, "{bad}");
            let json = parsed(&reply);
            assert_eq!(json.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
        // Still alive and compiling:
        let ok = server.handle_line(r#"{"op":"ping"}"#);
        assert!(ok.line.contains("pong"));
    }
}
