//! The service loop: one warm [`Pipeline`] behind stdio or TCP.
//!
//! A [`Server`] owns exactly one [`Pipeline`], so every request —
//! whatever its transport or connection — warms the same allocation
//! cache. That is the whole point of serve mode: the paper's two-phase
//! allocation is expensive once per *shape*, and long-lived traffic
//! repeats shapes endlessly, so the second client gets the first
//! client's search for free.
//!
//! Transports:
//!
//! * [`Server::serve`] — a blocking request/response loop over any
//!   `BufRead`/`Write` pair (stdin/stdout in the CLI, in-memory
//!   buffers in tests).
//! * [`Server::serve_tcp`] — accepts TCP connections and runs the same
//!   loop per connection on a scoped thread, so concurrent clients
//!   compile in parallel against the shared cache. A `shutdown`
//!   request stops the accept loop.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use raco_driver::json::Json;
use raco_driver::{Pipeline, PipelineConfig};

use crate::metrics::{ServiceMetrics, INVALID_OP};
use crate::protocol::{self, Envelope, Request};

/// How long a drained connection thread may lag behind the stop flag:
/// blocked reads wake at this interval to check whether a shutdown was
/// requested elsewhere.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// How many further poll intervals a connection that has already
/// received *part* of a request line is given, after the stop flag
/// rises, to finish sending it. A half-received request is nearly in
/// flight — dropping it instantly would lose work the client believes
/// it submitted — but an unbounded wait would let one stalled client
/// wedge the drain, so the grace is bounded (10 × 50 ms = 500 ms).
const DRAIN_GRACE_POLLS: u32 = 10;

/// Maximum accepted request line length in bytes (1 MiB). Longer lines
/// are consumed and answered with an error response — the connection
/// survives, and a hostile or buggy client can no longer balloon server
/// memory by never sending a newline.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Reads one newline-terminated line from `reader`, capping its length
/// at `limit` bytes (exclusive of the newline).
///
/// Returns `None` at end of input, `Some(Ok(line))` for a line within
/// the cap, and `Some(Err(total_bytes))` for an oversized line — which
/// is consumed to its terminating newline (buffering at most one
/// `BufRead` chunk at a time) so the caller can keep serving the
/// connection.
///
/// When `stop` is given, the underlying stream is expected to have a
/// read timeout: a timed-out read re-checks the flag and either keeps
/// waiting (flag clear) or winds the connection down (flag set). The
/// wind-down distinguishes how far a request got: a thread parked
/// *between* requests (nothing read yet) gives up immediately as a
/// clean end of input, while a thread that has already consumed part
/// of a line keeps waiting up to [`DRAIN_GRACE_POLLS`] more intervals
/// for the client to finish it — so a request the client is actively
/// sending still gets served, but a stalled half-line cannot wedge the
/// drain forever.
fn read_limited_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
    stop: Option<&AtomicBool>,
) -> io::Result<Option<Result<String, u64>>> {
    let mut line: Vec<u8> = Vec::new();
    let mut total: u64 = 0;
    let mut saw_input = false;
    let mut grace = DRAIN_GRACE_POLLS;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                match stop {
                    Some(flag) if flag.load(Ordering::Acquire) => {
                        if !saw_input || grace == 0 {
                            return Ok(None);
                        }
                        grace -= 1;
                        continue;
                    }
                    Some(_) => continue,
                    None => return Err(e),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // End of input; the final line may lack its newline.
            if !saw_input {
                return Ok(None);
            }
            break;
        }
        saw_input = true;
        let (used, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        let content = used - usize::from(done);
        total += content as u64;
        if total <= limit as u64 {
            line.extend_from_slice(&chunk[..content]);
        } else {
            // Over the cap: stop accumulating, keep draining the line.
            line.clear();
        }
        reader.consume(used);
        if done {
            break;
        }
    }
    if total > limit as u64 {
        Ok(Some(Err(total)))
    } else {
        Ok(Some(Ok(String::from_utf8_lossy(&line).into_owned())))
    }
}

/// One response line plus the connection's fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The single-line JSON response (no trailing newline).
    pub line: String,
    /// `true` if the client asked this connection to close.
    pub shutdown: bool,
}

/// A long-lived compile service over one shared warm cache.
#[derive(Debug)]
pub struct Server {
    pipeline: Pipeline,
    /// Where graceful shutdowns (and default-path `save_cache`
    /// requests) snapshot the warm cache; `None` disables both.
    cache_save_path: Option<PathBuf>,
    /// Per-op request counters and latency histograms (the `metrics`
    /// op reads these; every response carries their `elapsed_us`).
    metrics: ServiceMetrics,
}

impl Server {
    /// A server whose defaults (machine, options, cache policy) come
    /// from `config`. Per-request knobs override everything except the
    /// cache policy, which is fixed for the server's lifetime.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_pipeline(Pipeline::with_config(config))
    }

    /// Wraps an existing pipeline (e.g. one pre-warmed by a batch run
    /// or one that loaded a cache snapshot at boot).
    pub fn with_pipeline(pipeline: Pipeline) -> Self {
        Server {
            pipeline,
            cache_save_path: None,
            metrics: ServiceMetrics::new(),
        }
    }

    /// Snapshot the warm cache to `path` on graceful shutdown (builder
    /// style). The same path backs `save_cache` requests that do not
    /// name their own.
    #[must_use]
    pub fn with_cache_save_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_save_path = Some(path.into());
        self
    }

    /// The configured shutdown-snapshot path, if any.
    pub fn cache_save_path(&self) -> Option<&std::path::Path> {
        self.cache_save_path.as_deref()
    }

    /// The shared pipeline (for stats, cache control, pre-warming).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Writes the shutdown snapshot, if one is configured. Both serve
    /// loops call this once their last connection has drained; a
    /// snapshot failure is reported on stderr but never turns a clean
    /// shutdown into an error (the cache is an optimization — losing
    /// it must not fail the service).
    fn snapshot_on_shutdown(&self) {
        if let Some(path) = &self.cache_save_path {
            match self.pipeline.save_cache(path) {
                Ok(report) => {
                    eprintln!("raco serve: cache snapshot {} ({report})", path.display());
                }
                Err(error) => eprintln!("raco serve: cache snapshot failed: {error}"),
            }
        }
    }

    /// Handles one request line and produces one response line.
    ///
    /// This is the transport-free core: both [`serve`](Self::serve)
    /// and [`serve_tcp`](Self::serve_tcp) are loops around it, and
    /// tests and benches call it directly (a "loopback" client).
    ///
    /// Every request is counted and timed into the server's per-op
    /// metrics (see the `metrics` op), and every response line gets an
    /// `elapsed_us` field with its end-to-end wall time.
    pub fn handle_line(&self, line: &str) -> Reply {
        let started = Instant::now();
        self.metrics.begin();
        let (op, mut reply) = self.dispatch(line);
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        self.metrics.finish(op, elapsed_ns);
        reply.line = attach_elapsed(reply.line, elapsed_ns);
        reply
    }

    /// Decodes and executes one request; returns the op label the
    /// request is accounted under plus the raw (un-timed) reply.
    fn dispatch(&self, line: &str) -> (&'static str, Reply) {
        let Envelope { id, request, knobs } = match protocol::parse_line(line) {
            Ok(envelope) => envelope,
            Err(e) => {
                return (
                    INVALID_OP,
                    Reply {
                        line: protocol::error_line(&e.id, &e.message),
                        shutdown: false,
                    },
                )
            }
        };
        let op = op_label(&request);
        let reply = |line: String| Reply {
            line,
            shutdown: false,
        };
        // Serve responses omit the per-stage `timings` array unless the
        // request opts in: rendering it costs more than a warm compile,
        // and the `metrics` op serves accumulated stage timings anyway.
        let report_reply = |mut report: raco_driver::CompilationReport| {
            if knobs.timings != Some(true) {
                report.timings.clear();
            }
            reply(protocol::report_line(&id, &report))
        };
        let out = match request {
            Request::Compile { name, source } => {
                let config = match knobs.apply(self.pipeline.config()) {
                    Ok(config) => config,
                    Err(message) => return (op, reply(protocol::error_line(&id, &message))),
                };
                match self.pipeline.compile_units_with(&config, &[(name, source)]) {
                    Ok(report) => report_reply(report),
                    Err(e) => reply(protocol::error_line(&id, &e.to_string())),
                }
            }
            Request::Kernels { kernel } => {
                let config = match knobs.apply(self.pipeline.config()) {
                    Ok(config) => config,
                    Err(message) => return (op, reply(protocol::error_line(&id, &message))),
                };
                match kernel {
                    None => {
                        let report = self.pipeline.compile_kernels_with(&config);
                        report_reply(report)
                    }
                    Some(name) => {
                        let suite = raco_kernels::suite();
                        let Some(kernel) = suite.iter().find(|k| k.name() == name) else {
                            let known: Vec<&str> = suite.iter().map(|k| k.name()).collect();
                            return (
                                op,
                                reply(protocol::error_line(
                                    &id,
                                    &format!(
                                        "unknown kernel `{name}` (known: {})",
                                        known.join(", ")
                                    ),
                                )),
                            );
                        };
                        let unit = (name.clone(), kernel.source().to_owned());
                        match self.pipeline.compile_units_with(&config, &[unit]) {
                            Ok(report) => report_reply(report),
                            Err(e) => reply(protocol::error_line(&id, &e.to_string())),
                        }
                    }
                }
            }
            Request::Stats => {
                // Cache counters first (their layout is load-bearing
                // for scripted clients), then the service fields.
                let Json::Obj(mut fields) = protocol::stats_json(&self.pipeline.cache_stats())
                else {
                    unreachable!("stats_json returns an object")
                };
                fields.extend(self.metrics.stats_fields());
                reply(protocol::payload_line(
                    &id,
                    vec![("stats".to_owned(), Json::Obj(fields))],
                ))
            }
            Request::Metrics => {
                let payload = self.metrics.payload(&self.pipeline.cache_stats());
                reply(protocol::payload_line(
                    &id,
                    vec![("metrics".to_owned(), payload)],
                ))
            }
            Request::ClearCache => {
                self.pipeline.clear_cache();
                reply(protocol::ack_line(&id, "cleared"))
            }
            Request::SaveCache { path } => {
                let target = match (&path, &self.cache_save_path) {
                    (Some(path), _) => PathBuf::from(path),
                    (None, Some(default)) => default.clone(),
                    (None, None) => {
                        return (
                            op,
                            reply(protocol::error_line(
                                &id,
                                "save_cache needs a `path` (the server has no --cache-save \
                                 default)",
                            )),
                        )
                    }
                };
                match self.pipeline.save_cache(&target) {
                    Ok(report) => reply(protocol::saved_line(&id, &target, &report)),
                    Err(error) => reply(protocol::error_line(&id, &error.to_string())),
                }
            }
            Request::Ping => reply(protocol::ack_line(&id, "pong")),
            Request::Shutdown => Reply {
                line: protocol::ack_line(&id, "shutdown"),
                shutdown: true,
            },
        };
        (op, out)
    }

    /// Produces the error reply for a request line of `total` bytes that
    /// exceeded [`MAX_REQUEST_LINE`]. Counted under the `invalid` op
    /// like any other undecodable request.
    fn oversized_reply(&self, total: u64) -> Reply {
        let started = Instant::now();
        self.metrics.begin();
        let line = protocol::error_line(
            &None,
            &format!("request line of {total} bytes exceeds the {MAX_REQUEST_LINE}-byte limit"),
        );
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        self.metrics.finish(INVALID_OP, elapsed_ns);
        Reply {
            line: attach_elapsed(line, elapsed_ns),
            shutdown: false,
        }
    }

    /// Serves NDJSON requests from `input`, writing responses to
    /// `output`, until a `shutdown` request or end of input. Blank
    /// lines are skipped; lines longer than [`MAX_REQUEST_LINE`] get an
    /// error response and the session continues; responses are flushed
    /// per request so a pipe-connected client never deadlocks waiting
    /// on a buffer. Both exits are graceful: if a cache-save path is
    /// configured (see [`with_cache_save_path`](Self::with_cache_save_path))
    /// the warm cache is snapshotted before returning.
    ///
    /// # Errors
    ///
    /// Returns the first transport I/O error (protocol-level problems
    /// are error *responses*, not errors here). The shutdown snapshot
    /// is still attempted on the error path — whatever warmth was
    /// accumulated is worth keeping.
    pub fn serve<R: BufRead, W: Write>(&self, mut input: R, mut output: W) -> io::Result<()> {
        let result = self.serve_inner(&mut input, &mut output);
        self.snapshot_on_shutdown();
        result
    }

    fn serve_inner<R: BufRead, W: Write>(&self, input: &mut R, output: &mut W) -> io::Result<()> {
        while let Some(read) = read_limited_line(input, MAX_REQUEST_LINE, None)? {
            let reply = match read {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line(&line)
                }
                Err(total) => self.oversized_reply(total),
            };
            output.write_all(reply.line.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if reply.shutdown {
                break;
            }
        }
        Ok(())
    }

    /// Accepts connections on `listener` and serves each on its own
    /// scoped thread against the shared pipeline, until any client
    /// sends `shutdown`.
    ///
    /// Shutdown is a **graceful drain**: the accept loop stops, every
    /// connection thread finishes the request it is currently
    /// compiling and writes its response, threads parked in blocking
    /// reads (idle keep-alive clients) notice the stop flag within a
    /// short poll interval (50 ms) and close, and only then — after
    /// every connection has drained — is the cache snapshot written
    /// (when a save path is configured).
    ///
    /// # Errors
    ///
    /// Returns the first *accept* error. Per-connection I/O errors
    /// only end that connection.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        // Nonblocking accept so the loop can observe the stop flag a
        // shutdown request (on any connection thread) sets.
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        let result = std::thread::scope(|scope| {
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        let stop = &stop;
                        scope.spawn(move || {
                            if self.serve_stream(&stream, stop) {
                                stop.store(true, Ordering::Release);
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            // Leaving the scope joins every connection thread: this is
            // the drain barrier in-flight requests finish behind.
            Ok(())
        });
        self.snapshot_on_shutdown();
        result
    }

    /// Serves one TCP connection; `true` if the client asked the whole
    /// server to shut down. The read side polls `stop` (via a read
    /// timeout) so a drain elsewhere closes this connection between
    /// requests instead of waiting for the client to hang up.
    fn serve_stream(&self, stream: &TcpStream, stop: &AtomicBool) -> bool {
        // Blocking per-connection I/O (the listener's nonblocking flag
        // is inherited on some platforms) with a short read timeout —
        // the timeout is what turns a parked idle connection into one
        // that notices a server-wide drain.
        if stream.set_nonblocking(false).is_err() {
            return false;
        }
        if stream.set_read_timeout(Some(DRAIN_POLL)).is_err() {
            return false;
        }
        let mut writer = match stream.try_clone() {
            Ok(writer) => writer,
            Err(_) => return false,
        };
        let mut reader = BufReader::new(stream);
        let mut shutdown = false;
        // Per-connection I/O errors just end this connection.
        while let Ok(Some(read)) = read_limited_line(&mut reader, MAX_REQUEST_LINE, Some(stop)) {
            let reply = match read {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line(&line)
                }
                Err(total) => self.oversized_reply(total),
            };
            if writer
                .write_all(reply.line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            if reply.shutdown {
                shutdown = true;
                break;
            }
        }
        shutdown
    }
}

/// The op name a decoded request is accounted under.
fn op_label(request: &Request) -> &'static str {
    match request {
        Request::Compile { .. } => "compile",
        Request::Kernels { .. } => "kernels",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::ClearCache => "clear_cache",
        Request::SaveCache { .. } => "save_cache",
        Request::Ping => "ping",
        Request::Shutdown => "shutdown",
    }
}

/// Appends `"elapsed_us":…` as the final field of a rendered response
/// object. String surgery instead of a reparse: response lines are
/// always single-line JSON objects, so the closing `}` is the last byte.
fn attach_elapsed(mut line: String, elapsed_ns: u64) -> String {
    use std::fmt::Write;
    debug_assert!(line.ends_with('}'), "response must be a JSON object");
    line.pop();
    // Integer formatting (µs + fixed three fractional digits) rather
    // than an f64 render: this runs on every response, and float
    // formatting costs several times an integer write.
    let _ = write!(
        line,
        ",\"elapsed_us\":{}.{:03}}}",
        elapsed_ns / 1_000,
        elapsed_ns % 1_000
    );
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_driver::json::Json;
    use raco_ir::AguSpec;

    fn server() -> Server {
        Server::new(PipelineConfig::new(AguSpec::new(4, 1).unwrap()))
    }

    fn parsed(reply: &Reply) -> Json {
        Json::parse(&reply.line).expect("response is valid JSON")
    }

    #[test]
    fn ping_and_shutdown_round_trip() {
        let server = server();
        let pong = server.handle_line(r#"{"op":"ping","id":1}"#);
        assert!(
            pong.line
                .starts_with(r#"{"id":1,"ok":true,"pong":true,"elapsed_us":"#),
            "{}",
            pong.line
        );
        assert!(!pong.shutdown);
        let bye = server.handle_line(r#"{"op":"shutdown"}"#);
        assert!(bye.shutdown);
        assert!(
            bye.line
                .starts_with(r#"{"ok":true,"shutdown":true,"elapsed_us":"#),
            "{}",
            bye.line
        );
    }

    #[test]
    fn every_response_carries_elapsed_us() {
        let server = server();
        for line in [
            r#"{"op":"ping"}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"metrics"}"#,
            "not json",
        ] {
            let reply = server.handle_line(line);
            let json = parsed(&reply);
            assert!(
                json.get("elapsed_us").is_some(),
                "`{line}` response lacks elapsed_us: {}",
                reply.line
            );
        }
        let oversized = server.oversized_reply(MAX_REQUEST_LINE as u64 + 1);
        assert!(parsed(&oversized).get("elapsed_us").is_some());
    }

    #[test]
    fn metrics_op_reports_latency_and_pipeline_stages() {
        let server = server();
        let compile =
            r#"{"op":"compile","source":"for (i = 0; i < 8; i++) { y[i] = x[i] + x[i+1]; }"}"#;
        server.handle_line(compile);
        server.handle_line(compile);
        let json = parsed(&server.handle_line(r#"{"op":"metrics","id":5}"#));
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        let metrics = json.get("metrics").expect("metrics payload");
        assert!(metrics.get("uptime_ms").and_then(Json::as_u64).is_some());

        let requests = metrics.get("requests").unwrap();
        assert_eq!(requests.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(
            requests
                .get("by_op")
                .and_then(|o| o.get("compile"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // The metrics request itself is still in flight while its own
        // payload is rendered.
        assert_eq!(requests.get("in_flight").and_then(Json::as_i64), Some(1));

        let compile_latency = metrics
            .get("latency_us")
            .and_then(|l| l.get("compile"))
            .expect("compile latency histogram");
        assert_eq!(compile_latency.get("count").and_then(Json::as_u64), Some(2));
        assert!(compile_latency.get("p50_us").is_some());
        assert!(compile_latency.get("p99_us").is_some());

        // The compiles above drove the whole pipeline, so accumulated
        // per-stage timings are present.
        let pipeline = metrics.get("pipeline_us").expect("pipeline stages");
        for stage in ["pipeline.parse", "pipeline.codegen", "pipeline.simulate"] {
            let entry = pipeline.get(stage).unwrap_or_else(|| panic!("{stage}"));
            assert!(entry.get("count").and_then(Json::as_u64).unwrap() >= 2);
        }

        let cache = metrics.get("cache").expect("cache rates");
        assert!(cache.get("hit_rate").is_some());
        assert!(
            cache.get("allocation_hits").and_then(Json::as_u64).unwrap() > 0,
            "second identical compile hits the warm cache"
        );
    }

    #[test]
    fn stats_keeps_cache_layout_and_adds_service_counters() {
        let server = server();
        server.handle_line(r#"{"op":"ping"}"#);
        let reply = server.handle_line(r#"{"op":"stats","id":2}"#);
        // Scripted clients key on the cache counters leading the
        // payload, so the service fields must come after them.
        assert!(
            reply.line.contains(r#""stats":{"allocation_hits":"#),
            "{}",
            reply.line
        );
        let stats = parsed(&reply).get("stats").cloned().expect("stats payload");
        assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some());
        assert_eq!(stats.get("requests_total").and_then(Json::as_u64), Some(1));
        assert_eq!(
            stats
                .get("requests_by_op")
                .and_then(|o| o.get("ping"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn compile_produces_a_report_envelope() {
        let server = server();
        let reply = server.handle_line(
            r#"{"id":9,"op":"compile","name":"tap3",
                "source":"for (i = 1; i < 100; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }"}"#,
        );
        let json = parsed(&reply);
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(9));
        let report = json.get("report").expect("report payload");
        assert_eq!(report.get("failed").and_then(Json::as_u64), Some(0));
        assert_eq!(
            report
                .get("units")
                .and_then(|u| match u {
                    Json::Arr(items) => items.first(),
                    _ => None,
                })
                .and_then(|u| u.get("name"))
                .and_then(Json::as_str),
            Some("tap3")
        );
    }

    #[test]
    fn report_timings_are_opt_in_per_request() {
        let server = server();
        let source = r#""source":"for (i = 1; i < 16; i++) { y[i] = x[i-1] + x[i]; }""#;
        // By default the response's report carries no timings array
        // (the key is omitted entirely, not rendered empty)...
        let bare = parsed(&server.handle_line(&format!(r#"{{"op":"compile",{source}}}"#)));
        assert_eq!(bare.get("ok"), Some(&Json::Bool(true)));
        assert!(bare.get("report").unwrap().get("timings").is_none());
        // ...and `timings: true` keeps it.
        let timed =
            parsed(&server.handle_line(&format!(r#"{{"op":"compile",{source},"timings":true}}"#)));
        let Some(Json::Arr(stages)) = timed.get("report").unwrap().get("timings") else {
            panic!("timings array must be present when requested");
        };
        assert!(!stages.is_empty());
        assert!(stages
            .iter()
            .any(|s| s.get("stage").and_then(Json::as_str) == Some("parse")));
    }

    #[test]
    fn per_request_knobs_change_the_machine() {
        let server = server();
        let reply = server.handle_line(
            r#"{"op":"compile","source":"for (i = 0; i < 8; i++) { s += x[i]; }","registers":2,"modify":3}"#,
        );
        let json = parsed(&reply);
        let machine = json.get("report").and_then(|r| r.get("machine")).unwrap();
        assert_eq!(
            machine.get("address_registers").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(machine.get("modify_range").and_then(Json::as_u64), Some(3));
        // The server's defaults are untouched.
        assert_eq!(server.pipeline().config().agu.address_registers(), 4);
    }

    #[test]
    fn named_kernels_compile_and_unknown_names_error() {
        let server = server();
        let ok = parsed(&server.handle_line(r#"{"op":"kernels","kernel":"paper_example"}"#));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            ok.get("report")
                .and_then(|r| r.get("loops"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let err = parsed(&server.handle_line(r#"{"op":"kernels","kernel":"nope"}"#));
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        let message = err.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("unknown kernel `nope`"));
        assert!(message.contains("paper_example"), "lists known kernels");
    }

    #[test]
    fn read_limited_line_caps_and_resynchronizes() {
        let input = format!("short\n{}\nafter\n", "x".repeat(100));
        let mut reader = std::io::BufReader::with_capacity(16, input.as_bytes());
        assert_eq!(
            read_limited_line(&mut reader, 40, None).unwrap(),
            Some(Ok("short".to_owned()))
        );
        // The long line reports its true length and is fully drained …
        assert_eq!(
            read_limited_line(&mut reader, 40, None).unwrap(),
            Some(Err(100))
        );
        // … so the next read picks up exactly at the following line.
        assert_eq!(
            read_limited_line(&mut reader, 40, None).unwrap(),
            Some(Ok("after".to_owned()))
        );
        assert_eq!(read_limited_line(&mut reader, 40, None).unwrap(), None);
        // A final line without a newline still arrives.
        let mut reader = std::io::BufReader::new("tail".as_bytes());
        assert_eq!(
            read_limited_line(&mut reader, 40, None).unwrap(),
            Some(Ok("tail".to_owned()))
        );
    }

    #[test]
    fn bad_requests_never_shut_the_connection() {
        let server = server();
        for bad in [
            "not json",
            r#"{"op":"compile","source":"for (i = 0; i++) {"}"#,
            r#"{"op":"compile","source":"x","registers":0}"#,
        ] {
            let reply = server.handle_line(bad);
            assert!(!reply.shutdown, "{bad}");
            let json = parsed(&reply);
            assert_eq!(json.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
        // Still alive and compiling:
        let ok = server.handle_line(r#"{"op":"ping"}"#);
        assert!(ok.line.contains("pong"));
    }
}
