//! The service loop: one warm [`Pipeline`] behind stdio or TCP.
//!
//! A [`Server`] owns exactly one [`Pipeline`], so every request —
//! whatever its transport or connection — warms the same allocation
//! cache. That is the whole point of serve mode: the paper's two-phase
//! allocation is expensive once per *shape*, and long-lived traffic
//! repeats shapes endlessly, so the second client gets the first
//! client's search for free.
//!
//! Transports:
//!
//! * [`Server::serve`] — a blocking request/response loop over any
//!   `BufRead`/`Write` pair (stdin/stdout in the CLI, in-memory
//!   buffers in tests).
//! * [`Server::serve_tcp`] — accepts TCP connections and runs the same
//!   loop per connection on a scoped thread, so concurrent clients
//!   compile in parallel against the shared cache. A `shutdown`
//!   request stops the accept loop.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use raco_driver::{Pipeline, PipelineConfig};

use crate::protocol::{self, Envelope, Request};

/// Maximum accepted request line length in bytes (1 MiB). Longer lines
/// are consumed and answered with an error response — the connection
/// survives, and a hostile or buggy client can no longer balloon server
/// memory by never sending a newline.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Reads one newline-terminated line from `reader`, capping its length
/// at `limit` bytes (exclusive of the newline).
///
/// Returns `None` at end of input, `Some(Ok(line))` for a line within
/// the cap, and `Some(Err(total_bytes))` for an oversized line — which
/// is consumed to its terminating newline (buffering at most one
/// `BufRead` chunk at a time) so the caller can keep serving the
/// connection.
fn read_limited_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
) -> io::Result<Option<Result<String, u64>>> {
    let mut line: Vec<u8> = Vec::new();
    let mut total: u64 = 0;
    let mut saw_input = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // End of input; the final line may lack its newline.
            if !saw_input {
                return Ok(None);
            }
            break;
        }
        saw_input = true;
        let (used, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        let content = used - usize::from(done);
        total += content as u64;
        if total <= limit as u64 {
            line.extend_from_slice(&chunk[..content]);
        } else {
            // Over the cap: stop accumulating, keep draining the line.
            line.clear();
        }
        reader.consume(used);
        if done {
            break;
        }
    }
    if total > limit as u64 {
        Ok(Some(Err(total)))
    } else {
        Ok(Some(Ok(String::from_utf8_lossy(&line).into_owned())))
    }
}

/// One response line plus the connection's fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The single-line JSON response (no trailing newline).
    pub line: String,
    /// `true` if the client asked this connection to close.
    pub shutdown: bool,
}

/// A long-lived compile service over one shared warm cache.
#[derive(Debug)]
pub struct Server {
    pipeline: Pipeline,
}

impl Server {
    /// A server whose defaults (machine, options, cache policy) come
    /// from `config`. Per-request knobs override everything except the
    /// cache policy, which is fixed for the server's lifetime.
    pub fn new(config: PipelineConfig) -> Self {
        Server {
            pipeline: Pipeline::with_config(config),
        }
    }

    /// Wraps an existing pipeline (e.g. one pre-warmed by a batch run).
    pub fn with_pipeline(pipeline: Pipeline) -> Self {
        Server { pipeline }
    }

    /// The shared pipeline (for stats, cache control, pre-warming).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Handles one request line and produces one response line.
    ///
    /// This is the transport-free core: both [`serve`](Self::serve)
    /// and [`serve_tcp`](Self::serve_tcp) are loops around it, and
    /// tests and benches call it directly (a "loopback" client).
    pub fn handle_line(&self, line: &str) -> Reply {
        let Envelope { id, request, knobs } = match protocol::parse_line(line) {
            Ok(envelope) => envelope,
            Err(e) => {
                return Reply {
                    line: protocol::error_line(&e.id, &e.message),
                    shutdown: false,
                }
            }
        };
        let reply = |line: String| Reply {
            line,
            shutdown: false,
        };
        match request {
            Request::Compile { name, source } => {
                let config = match knobs.apply(self.pipeline.config()) {
                    Ok(config) => config,
                    Err(message) => return reply(protocol::error_line(&id, &message)),
                };
                match self.pipeline.compile_units_with(&config, &[(name, source)]) {
                    Ok(report) => reply(protocol::report_line(&id, &report)),
                    Err(e) => reply(protocol::error_line(&id, &e.to_string())),
                }
            }
            Request::Kernels { kernel } => {
                let config = match knobs.apply(self.pipeline.config()) {
                    Ok(config) => config,
                    Err(message) => return reply(protocol::error_line(&id, &message)),
                };
                match kernel {
                    None => {
                        let report = self.pipeline.compile_kernels_with(&config);
                        reply(protocol::report_line(&id, &report))
                    }
                    Some(name) => {
                        let suite = raco_kernels::suite();
                        let Some(kernel) = suite.iter().find(|k| k.name() == name) else {
                            let known: Vec<&str> = suite.iter().map(|k| k.name()).collect();
                            return reply(protocol::error_line(
                                &id,
                                &format!("unknown kernel `{name}` (known: {})", known.join(", ")),
                            ));
                        };
                        let unit = (name.clone(), kernel.source().to_owned());
                        match self.pipeline.compile_units_with(&config, &[unit]) {
                            Ok(report) => reply(protocol::report_line(&id, &report)),
                            Err(e) => reply(protocol::error_line(&id, &e.to_string())),
                        }
                    }
                }
            }
            Request::Stats => reply(protocol::stats_line(&id, &self.pipeline.cache_stats())),
            Request::ClearCache => {
                self.pipeline.clear_cache();
                reply(protocol::ack_line(&id, "cleared"))
            }
            Request::Ping => reply(protocol::ack_line(&id, "pong")),
            Request::Shutdown => Reply {
                line: protocol::ack_line(&id, "shutdown"),
                shutdown: true,
            },
        }
    }

    /// Produces the error reply for a request line of `total` bytes that
    /// exceeded [`MAX_REQUEST_LINE`].
    fn oversized_reply(total: u64) -> Reply {
        Reply {
            line: protocol::error_line(
                &None,
                &format!("request line of {total} bytes exceeds the {MAX_REQUEST_LINE}-byte limit"),
            ),
            shutdown: false,
        }
    }

    /// Serves NDJSON requests from `input`, writing responses to
    /// `output`, until a `shutdown` request or end of input. Blank
    /// lines are skipped; lines longer than [`MAX_REQUEST_LINE`] get an
    /// error response and the session continues; responses are flushed
    /// per request so a pipe-connected client never deadlocks waiting
    /// on a buffer.
    ///
    /// # Errors
    ///
    /// Returns the first transport I/O error (protocol-level problems
    /// are error *responses*, not errors here).
    pub fn serve<R: BufRead, W: Write>(&self, mut input: R, mut output: W) -> io::Result<()> {
        while let Some(read) = read_limited_line(&mut input, MAX_REQUEST_LINE)? {
            let reply = match read {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line(&line)
                }
                Err(total) => Self::oversized_reply(total),
            };
            output.write_all(reply.line.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if reply.shutdown {
                break;
            }
        }
        Ok(())
    }

    /// Accepts connections on `listener` and serves each on its own
    /// scoped thread against the shared pipeline, until any client
    /// sends `shutdown`. In-flight connections drain their current
    /// request; the accept loop then stops.
    ///
    /// # Errors
    ///
    /// Returns the first *accept* error. Per-connection I/O errors
    /// only end that connection.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        // Nonblocking accept so the loop can observe the stop flag a
        // shutdown request (on any connection thread) sets.
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        let stop = &stop;
                        scope.spawn(move || {
                            if self.serve_stream(&stream) {
                                stop.store(true, Ordering::Release);
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })
    }

    /// Serves one TCP connection; `true` if the client asked the whole
    /// server to shut down.
    fn serve_stream(&self, stream: &TcpStream) -> bool {
        // Blocking per-connection I/O (the listener's nonblocking flag
        // is inherited on some platforms).
        if stream.set_nonblocking(false).is_err() {
            return false;
        }
        let mut writer = match stream.try_clone() {
            Ok(writer) => writer,
            Err(_) => return false,
        };
        let mut reader = BufReader::new(stream);
        let mut shutdown = false;
        // Per-connection I/O errors just end this connection.
        while let Ok(Some(read)) = read_limited_line(&mut reader, MAX_REQUEST_LINE) {
            let reply = match read {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line(&line)
                }
                Err(total) => Self::oversized_reply(total),
            };
            if writer
                .write_all(reply.line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            if reply.shutdown {
                shutdown = true;
                break;
            }
        }
        shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_driver::json::Json;
    use raco_ir::AguSpec;

    fn server() -> Server {
        Server::new(PipelineConfig::new(AguSpec::new(4, 1).unwrap()))
    }

    fn parsed(reply: &Reply) -> Json {
        Json::parse(&reply.line).expect("response is valid JSON")
    }

    #[test]
    fn ping_and_shutdown_round_trip() {
        let server = server();
        let pong = server.handle_line(r#"{"op":"ping","id":1}"#);
        assert_eq!(pong.line, r#"{"id":1,"ok":true,"pong":true}"#);
        assert!(!pong.shutdown);
        let bye = server.handle_line(r#"{"op":"shutdown"}"#);
        assert!(bye.shutdown);
        assert_eq!(bye.line, r#"{"ok":true,"shutdown":true}"#);
    }

    #[test]
    fn compile_produces_a_report_envelope() {
        let server = server();
        let reply = server.handle_line(
            r#"{"id":9,"op":"compile","name":"tap3",
                "source":"for (i = 1; i < 100; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }"}"#,
        );
        let json = parsed(&reply);
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(9));
        let report = json.get("report").expect("report payload");
        assert_eq!(report.get("failed").and_then(Json::as_u64), Some(0));
        assert_eq!(
            report
                .get("units")
                .and_then(|u| match u {
                    Json::Arr(items) => items.first(),
                    _ => None,
                })
                .and_then(|u| u.get("name"))
                .and_then(Json::as_str),
            Some("tap3")
        );
    }

    #[test]
    fn per_request_knobs_change_the_machine() {
        let server = server();
        let reply = server.handle_line(
            r#"{"op":"compile","source":"for (i = 0; i < 8; i++) { s += x[i]; }","registers":2,"modify":3}"#,
        );
        let json = parsed(&reply);
        let machine = json.get("report").and_then(|r| r.get("machine")).unwrap();
        assert_eq!(
            machine.get("address_registers").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(machine.get("modify_range").and_then(Json::as_u64), Some(3));
        // The server's defaults are untouched.
        assert_eq!(server.pipeline().config().agu.address_registers(), 4);
    }

    #[test]
    fn named_kernels_compile_and_unknown_names_error() {
        let server = server();
        let ok = parsed(&server.handle_line(r#"{"op":"kernels","kernel":"paper_example"}"#));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            ok.get("report")
                .and_then(|r| r.get("loops"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let err = parsed(&server.handle_line(r#"{"op":"kernels","kernel":"nope"}"#));
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        let message = err.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("unknown kernel `nope`"));
        assert!(message.contains("paper_example"), "lists known kernels");
    }

    #[test]
    fn read_limited_line_caps_and_resynchronizes() {
        let input = format!("short\n{}\nafter\n", "x".repeat(100));
        let mut reader = std::io::BufReader::with_capacity(16, input.as_bytes());
        assert_eq!(
            read_limited_line(&mut reader, 40).unwrap(),
            Some(Ok("short".to_owned()))
        );
        // The long line reports its true length and is fully drained …
        assert_eq!(read_limited_line(&mut reader, 40).unwrap(), Some(Err(100)));
        // … so the next read picks up exactly at the following line.
        assert_eq!(
            read_limited_line(&mut reader, 40).unwrap(),
            Some(Ok("after".to_owned()))
        );
        assert_eq!(read_limited_line(&mut reader, 40).unwrap(), None);
        // A final line without a newline still arrives.
        let mut reader = std::io::BufReader::new("tail".as_bytes());
        assert_eq!(
            read_limited_line(&mut reader, 40).unwrap(),
            Some(Ok("tail".to_owned()))
        );
    }

    #[test]
    fn bad_requests_never_shut_the_connection() {
        let server = server();
        for bad in [
            "not json",
            r#"{"op":"compile","source":"for (i = 0; i++) {"}"#,
            r#"{"op":"compile","source":"x","registers":0}"#,
        ] {
            let reply = server.handle_line(bad);
            assert!(!reply.shutdown, "{bad}");
            let json = parsed(&reply);
            assert_eq!(json.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
        // Still alive and compiling:
        let ok = server.handle_line(r#"{"op":"ping"}"#);
        assert!(ok.line.contains("pong"));
    }
}
