//! Per-server request accounting behind the `metrics` protocol op.
//!
//! Every [`Server`](crate::Server) owns one [`ServiceMetrics`]: an
//! [`raco_obs::Registry`] whose counters and histograms are keyed by
//! protocol op name, plus the service start time and an in-flight
//! gauge. Request latency covers the whole `handle_line` round trip —
//! parse, dispatch, compile, render — so the per-op histograms answer
//! "what does a `compile` cost end to end", while the registry in
//! [`raco_obs::global()`] (surfaced here as `pipeline_us`) breaks the
//! same wall time down by pipeline stage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use raco_driver::json::Json;
use raco_driver::CacheStats;
use raco_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};

use crate::protocol;

/// Op label for request lines that never decoded into a [`Request`]
/// (malformed JSON, unknown ops, oversized lines…).
///
/// [`Request`]: crate::Request
pub(crate) const INVALID_OP: &str = "invalid";

/// Every op label [`ServiceMetrics::finish`] can be called with, hot
/// ops first: handles are pre-resolved per label so the per-request
/// path never takes the registry lock.
const OP_LABELS: [&str; 9] = [
    "compile",
    "kernels",
    "stats",
    "metrics",
    "clear_cache",
    "save_cache",
    "ping",
    "shutdown",
    INVALID_OP,
];

/// Request counters, latency histograms and the in-flight gauge for one
/// server, all keyed by protocol op name.
#[derive(Debug)]
pub(crate) struct ServiceMetrics {
    registry: Registry,
    started: Instant,
    in_flight: Arc<Gauge>,
    /// Pre-resolved (counter, histogram) handle per [`OP_LABELS`] entry.
    ops: [(Arc<Counter>, Arc<Histogram>); OP_LABELS.len()],
    /// Connections refused by the `--max-connections` bound. Plain
    /// atomics rather than registry counters: [`total_requests`] sums
    /// every registry counter, and a shed connection never became a
    /// request.
    ///
    /// [`total_requests`]: Self::total_requests
    shed_connections: AtomicU64,
    /// Requests refused because their shard's queue was full.
    shed_queue: AtomicU64,
    /// Connections closed for not completing a request within the read
    /// deadline.
    read_deadlines: AtomicU64,
    /// Requests whose compile outran the compute deadline.
    compute_deadlines: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        let in_flight = registry.gauge("in_flight");
        let ops = std::array::from_fn(|i| {
            (
                registry.counter(OP_LABELS[i]),
                registry.histogram(OP_LABELS[i]),
            )
        });
        ServiceMetrics {
            registry,
            started: Instant::now(),
            in_flight,
            ops,
            shed_connections: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            read_deadlines: AtomicU64::new(0),
            compute_deadlines: AtomicU64::new(0),
        }
    }

    /// Counts one connection refused at the `--max-connections` bound.
    pub(crate) fn note_shed_connection(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request refused by a full shard queue.
    pub(crate) fn note_shed_queue(&self) {
        self.shed_queue.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection reaped by the read deadline.
    pub(crate) fn note_read_deadline(&self) {
        self.read_deadlines.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one compile that outran the compute deadline.
    pub(crate) fn note_compute_deadline(&self) {
        self.compute_deadlines.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests/connections shed (queue + connection cap).
    #[cfg(test)]
    pub(crate) fn total_shed(&self) -> u64 {
        self.shed_connections.load(Ordering::Relaxed) + self.shed_queue.load(Ordering::Relaxed)
    }

    /// Marks one request as entering the service.
    pub(crate) fn begin(&self) {
        self.in_flight.inc();
    }

    /// Marks the request done: counts it under `op` and records its
    /// end-to-end latency (nanoseconds) into the op's histogram.
    pub(crate) fn finish(&self, op: &str, elapsed_ns: u64) {
        match OP_LABELS.iter().position(|label| *label == op) {
            Some(index) => {
                let (counter, histogram) = &self.ops[index];
                counter.inc();
                histogram.record(elapsed_ns);
            }
            // Unreachable for the labels the server hands out, but a
            // novel label must still be counted, not dropped.
            None => {
                self.registry.counter(op).inc();
                self.registry.histogram(op).record(elapsed_ns);
            }
        }
        self.in_flight.dec();
    }

    /// Milliseconds since the server was constructed.
    pub(crate) fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Requests finished so far, across every op.
    pub(crate) fn total_requests(&self) -> u64 {
        self.registry.counters().iter().map(|(_, n)| n).sum()
    }

    /// The service fields appended to the `stats` response, after the
    /// cache counters.
    pub(crate) fn stats_fields(&self) -> Vec<(String, Json)> {
        let by_op: Vec<(String, Json)> = self
            .registry
            .counters()
            .into_iter()
            .map(|(op, n)| (op, Json::UInt(n)))
            .collect();
        vec![
            ("uptime_ms".to_owned(), Json::UInt(self.uptime_ms())),
            (
                "requests_total".to_owned(),
                Json::UInt(self.total_requests()),
            ),
            ("requests_by_op".to_owned(), Json::Obj(by_op)),
        ]
    }

    /// The full `metrics` response payload: uptime, request counts,
    /// per-op latency quantiles, accumulated pipeline stage timings
    /// (from [`raco_obs::global()`]), shed/deadline counters, cache
    /// hit/eviction rates (aggregated across shards) and — when the
    /// server runs more than one shard — a per-shard breakdown the
    /// caller renders.
    pub(crate) fn payload(&self, cache: &CacheStats, shards: Option<Json>) -> Json {
        let by_op: Vec<(String, Json)> = self
            .registry
            .counters()
            .into_iter()
            .map(|(op, n)| (op, Json::UInt(n)))
            .collect();
        let latency: Vec<(String, Json)> = self
            .registry
            .histograms()
            .into_iter()
            .filter(|(_, snapshot)| snapshot.count > 0)
            .map(|(op, snapshot)| (op, histogram_json(&snapshot)))
            .collect();
        let pipeline: Vec<(String, Json)> = raco_obs::global()
            .histograms()
            .into_iter()
            .filter(|(_, snapshot)| snapshot.count > 0)
            .map(|(name, snapshot)| (name, histogram_json(&snapshot)))
            .collect();
        let mut fields = vec![
            ("uptime_ms".to_owned(), Json::UInt(self.uptime_ms())),
            (
                "requests".to_owned(),
                Json::Obj(vec![
                    ("total".to_owned(), Json::UInt(self.total_requests())),
                    ("in_flight".to_owned(), Json::Int(self.in_flight.get())),
                    ("by_op".to_owned(), Json::Obj(by_op)),
                ]),
            ),
            ("latency_us".to_owned(), Json::Obj(latency)),
            ("pipeline_us".to_owned(), Json::Obj(pipeline)),
            (
                "shed".to_owned(),
                Json::Obj(vec![
                    (
                        "connections".to_owned(),
                        Json::UInt(self.shed_connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "queue".to_owned(),
                        Json::UInt(self.shed_queue.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "deadlines".to_owned(),
                Json::Obj(vec![
                    (
                        "read".to_owned(),
                        Json::UInt(self.read_deadlines.load(Ordering::Relaxed)),
                    ),
                    (
                        "compute".to_owned(),
                        Json::UInt(self.compute_deadlines.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("cache".to_owned(), protocol::stats_json(cache)),
        ];
        if let Some(shards) = shards {
            fields.push(("shards".to_owned(), shards));
        }
        Json::Obj(fields)
    }
}

/// One latency histogram as JSON: exact count/total plus estimated
/// quantiles, durations converted from nanoseconds to microseconds.
pub(crate) fn histogram_json(snapshot: &HistogramSnapshot) -> Json {
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);
    Json::Obj(vec![
        ("count".to_owned(), Json::UInt(snapshot.count)),
        ("total_us".to_owned(), us(snapshot.sum)),
        ("p50_us".to_owned(), us(snapshot.quantile(0.50))),
        ("p95_us".to_owned(), us(snapshot.quantile(0.95))),
        ("p99_us".to_owned(), us(snapshot.quantile(0.99))),
        ("max_us".to_owned(), us(snapshot.max)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_counts_and_times_per_op() {
        let metrics = ServiceMetrics::new();
        metrics.begin();
        metrics.finish("ping", 1_000);
        metrics.begin();
        metrics.finish("compile", 5_000);
        assert_eq!(metrics.total_requests(), 2);
        assert_eq!(metrics.in_flight.get(), 0);
        let payload = metrics.payload(&CacheStats::default(), None);
        let requests = payload.get("requests").unwrap();
        assert_eq!(requests.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(
            requests
                .get("by_op")
                .and_then(|o| o.get("compile"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let compile = payload
            .get("latency_us")
            .and_then(|l| l.get("compile"))
            .unwrap();
        assert_eq!(compile.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(compile.get("total_us"), Some(&Json::Num(5.0)));
    }

    #[test]
    fn shed_and_deadline_counters_stay_out_of_request_totals() {
        let metrics = ServiceMetrics::new();
        metrics.note_shed_connection();
        metrics.note_shed_queue();
        metrics.note_shed_queue();
        metrics.note_read_deadline();
        metrics.note_compute_deadline();
        // Sheds and deadline reaps never became requests.
        assert_eq!(metrics.total_requests(), 0);
        assert_eq!(metrics.total_shed(), 3);
        let payload = metrics.payload(&CacheStats::default(), None);
        let shed = payload.get("shed").expect("shed object");
        assert_eq!(shed.get("connections").and_then(Json::as_u64), Some(1));
        assert_eq!(shed.get("queue").and_then(Json::as_u64), Some(2));
        let deadlines = payload.get("deadlines").expect("deadlines object");
        assert_eq!(deadlines.get("read").and_then(Json::as_u64), Some(1));
        assert_eq!(deadlines.get("compute").and_then(Json::as_u64), Some(1));
        assert!(payload.get("shards").is_none(), "single-process payload");
    }

    #[test]
    fn stats_fields_carry_uptime_and_counts() {
        let metrics = ServiceMetrics::new();
        metrics.begin();
        metrics.finish("stats", 100);
        let fields = metrics.stats_fields();
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["uptime_ms", "requests_total", "requests_by_op"]);
        assert_eq!(fields[1].1, Json::UInt(1));
    }
}
