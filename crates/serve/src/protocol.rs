//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. The
//! same protocol runs over stdio (one client) and TCP (one stream per
//! client); nothing in it is transport-specific. Blank lines are
//! ignored; unknown object keys are ignored too, so clients can carry
//! their own metadata.
//!
//! ## Requests
//!
//! Every request is a JSON object with an `"op"` field and an optional
//! `"id"` (any JSON scalar, echoed verbatim in the response so clients
//! can pipeline):
//!
//! | `op` | fields | effect |
//! |------|--------|--------|
//! | `compile` | `source` (required), `name` | compile a DSL program |
//! | `kernels` | `kernel` (one name, or omit for the whole suite) | compile built-in kernels |
//! | `stats` | — | allocation-cache statistics plus service counters |
//! | `metrics` | — | service metrics: per-op latency, pipeline stage timings, cache rates |
//! | `clear_cache` | — | drop every cached entry |
//! | `save_cache` | `path` (optional) | snapshot the warm cache to disk |
//! | `ping` | — | liveness check |
//! | `shutdown` | — | acknowledge, then close the connection |
//!
//! `save_cache` writes the server's allocation cache as a
//! [`raco_driver::persist`] snapshot — to `path` when given, otherwise
//! to the server's configured `--cache-save` path (an error response
//! if it has neither). The same snapshot is written automatically on
//! graceful shutdown when the server was started with `--cache-save`.
//!
//! `compile` and `kernels` accept per-request machine/option knobs
//! (`machine`, `registers`, `modify`, `modify_registers`, `threads`,
//! `iterations`, `validate`, `listings`, `cache`, `timings`); anything
//! not given falls back to the server's defaults. `machine` selects a
//! whole machine description — a built-in name (`paper`, `tms320c2x`,
//! `dsp56k`, `adsp210x`, `bwdsp`, `saris`) or inline `key = value`
//! description text (see [`raco_ir::MachineDescription::parse`]) —
//! and the numeric knobs then override on top of it, so one
//! connection can compile the same source for several back ends. The
//! warm allocation cache is shared across *all* requests and
//! connections — cache keys include the machine parameters, so
//! mixed-machine traffic is safe.
//! `timings: true` keeps the per-stage `timings` array in the
//! response's report; serve responses omit it by default (rendering it
//! costs more than a warm compile — accumulated stage timings are
//! always available through the `metrics` op).
//!
//! ## Responses
//!
//! A single line: `{"id":…,"ok":true,…}` with a `report` (the
//! [`CompilationReport`] JSON), `stats`, `metrics`, or an
//! acknowledgement flag — or `{"id":…,"ok":false,"error":"…"}`.
//! Malformed input never kills the connection; it produces an error
//! response. The server appends an `elapsed_us` field (end-to-end
//! request wall time, microseconds) to every response it sends.
//!
//! Operational failures of the serve tier additionally carry a
//! machine-readable `error_kind`: `busy` (the `--max-connections`
//! bound refused the connection), `shed` (the routed shard's queue was
//! full), `read_deadline` (no complete request arrived within
//! `--read-deadline`; the connection is then closed) and
//! `compute_deadline` (the compile outran `--compute-deadline`; the
//! connection survives and the shard finishes warming its cache in the
//! background, so a retry usually hits).
//!
//! Compile reports carry the full machine (`address_registers`,
//! `modify_range`, `modify_registers`) and, per loop, the explicit
//! `predicted_cycles` / `measured_cycles` pair: the allocator prices
//! modify registers, so the two agree on every machine the server is
//! asked to target (`measured_cycles` is `null` only when validation
//! was disabled).
//!
//! ```
//! use raco_serve::protocol::{self, Request};
//!
//! let envelope = protocol::parse_line(
//!     r#"{"id": 7, "op": "compile", "source": "for (i = 0; i < 8; i++) { s += x[i]; }"}"#,
//! )?;
//! assert!(matches!(envelope.request, Request::Compile { .. }));
//!
//! // Unparsable lines are errors that echo whatever id was readable:
//! let err = protocol::parse_line(r#"{"id": 7, "op": "warp"}"#).unwrap_err();
//! assert!(err.message.contains("unknown op"));
//! assert!(protocol::error_line(&err.id, &err.message).contains("\"ok\":false"));
//! # Ok::<(), raco_serve::protocol::ProtocolError>(())
//! ```

use raco_driver::json::Json;
use raco_driver::{CacheStats, CompilationReport, Parallelism, PipelineConfig, SaveReport};
use raco_ir::{MachineDescription, UpdateRange};

/// A decoded request line: the operation plus its envelope metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The operation to perform.
    pub request: Request,
    /// Per-request configuration overrides (compile/kernels only).
    pub knobs: Knobs,
}

/// The operations a client can ask for.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Compile one DSL program (possibly many loops).
    Compile {
        /// Unit label used in the report (defaults to `request`).
        name: String,
        /// The DSL source text.
        source: String,
    },
    /// Compile the built-in kernel suite, or one named kernel.
    Kernels {
        /// A single kernel name; `None` compiles the whole suite.
        kernel: Option<String>,
    },
    /// Report allocation-cache statistics and service counters.
    Stats,
    /// Report service metrics: per-op request latency, accumulated
    /// pipeline stage timings, cache hit/eviction rates.
    Metrics,
    /// Drop every cached allocation and cost curve.
    ClearCache,
    /// Snapshot the warm cache to disk (see [`raco_driver::persist`]).
    SaveCache {
        /// Snapshot path; `None` uses the server's configured default.
        path: Option<String>,
    },
    /// Liveness check.
    Ping,
    /// Acknowledge and close this connection (stdio: stop serving).
    Shutdown,
}

/// Largest address- or modify-register count a request may ask for.
///
/// Real AGUs top out at a handful of registers; the bound exists so a
/// hostile request cannot make the allocator sweep billions of
/// register counts or push a machine whose counts overflow the u32
/// fields of the cache-snapshot format into a long-lived server's
/// cache. Re-exported from [`raco_ir`] so the protocol and the
/// description parser enforce one number.
pub const MAX_MACHINE_REGISTERS: usize = raco_ir::MAX_MACHINE_REGISTERS;

/// Optional per-request overrides of the server's default
/// [`PipelineConfig`]. `None` everywhere means "use the defaults".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Knobs {
    /// Whole-machine selection: a built-in description name or inline
    /// `key = value` description text. Resolved first; the numeric
    /// machine knobs below then override on top of it.
    pub machine: Option<String>,
    /// Address registers (the paper's `K`).
    pub registers: Option<usize>,
    /// Auto-modify range (the paper's `M`).
    pub modify: Option<u32>,
    /// Modify registers.
    pub modify_registers: Option<usize>,
    /// Worker threads for this request (`0`/`1` = sequential).
    pub threads: Option<usize>,
    /// Simulated iterations per loop.
    pub iterations: Option<u64>,
    /// Validate generated code against a reference trace.
    pub validate: Option<bool>,
    /// Attach listings to the report.
    pub listings: Option<bool>,
    /// Consult the shared allocation cache.
    pub cache: Option<bool>,
    /// Include the per-stage `timings` array in this response's report.
    /// Serve responses omit it by default — rendering it costs more
    /// than a warm compile, and accumulated stage timings are always
    /// available through the `metrics` op.
    pub timings: Option<bool>,
}

impl Knobs {
    /// `true` if every knob is at its default (no overrides given).
    pub fn is_default(&self) -> bool {
        *self == Knobs::default()
    }

    /// Builds the effective per-request configuration over `base`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the requested machine is
    /// invalid (e.g. zero address registers, or register counts beyond
    /// [`MAX_MACHINE_REGISTERS`] — no real AGU comes close, and
    /// unbounded counts would let one request stall the allocator's
    /// per-`K` sweeps or overflow the u32 counts in cache snapshots).
    pub fn apply(&self, base: &PipelineConfig) -> Result<PipelineConfig, String> {
        let mut config = base.clone();
        if let Some(machine) = &self.machine {
            config.agu = *MachineDescription::resolve(machine)
                .map_err(|e| e.to_string())?
                .spec();
        }
        if self.registers.is_some() || self.modify.is_some() || self.modify_registers.is_some() {
            let agu = config.agu;
            let registers = self.registers.unwrap_or(agu.address_registers());
            let modify_registers = self.modify_registers.unwrap_or(agu.modify_registers());
            for (knob, count) in [
                ("registers", registers),
                ("modify_registers", modify_registers),
            ] {
                if count > MAX_MACHINE_REGISTERS {
                    return Err(format!(
                        "{knob}: {count} exceeds the supported maximum of \
                         {MAX_MACHINE_REGISTERS}"
                    ));
                }
            }
            // Builders, not a fresh spec: a `machine`-selected (or
            // server-default) description keeps its update range and
            // cost table under partial numeric overrides.
            let mut agu = agu
                .with_address_registers(registers)
                .map_err(|e| e.to_string())?
                .with_modify_registers(modify_registers);
            if let Some(modify) = self.modify {
                agu = agu.with_update_range(UpdateRange::symmetric(modify));
            }
            config.agu = agu;
        }
        if let Some(threads) = self.threads {
            config.parallelism = match threads {
                0 | 1 => Parallelism::Sequential,
                n => Parallelism::Fixed(n),
            };
        }
        if let Some(iterations) = self.iterations {
            config.validation_iterations = iterations;
        }
        if let Some(validate) = self.validate {
            config.validate = validate;
        }
        if let Some(listings) = self.listings {
            config.listings = listings;
        }
        if let Some(cache) = self.cache {
            config.caching = cache;
        }
        Ok(config)
    }
}

/// A request that could not be decoded. Carries whatever `id` was
/// readable so the error response still correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The request id, when the line parsed far enough to have one.
    pub id: Option<Json>,
    /// What was wrong with the request.
    pub message: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn fail(id: &Option<Json>, message: impl Into<String>) -> ProtocolError {
    ProtocolError {
        id: id.clone(),
        message: message.into(),
    }
}

/// Reads an optional scalar field, rejecting wrong types (a silently
/// ignored `"registers": "four"` would be a debugging trap).
fn scalar<T>(
    value: &Json,
    id: &Option<Json>,
    key: &str,
    extract: impl Fn(&Json) -> Option<T>,
    expected: &str,
) -> Result<Option<T>, ProtocolError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => extract(field)
            .map(Some)
            .ok_or_else(|| fail(id, format!("field `{key}` must be {expected}"))),
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns [`ProtocolError`] for malformed JSON, non-object requests,
/// unknown ops, missing required fields and wrongly-typed knobs.
pub fn parse_line(line: &str) -> Result<Envelope, ProtocolError> {
    let value = Json::parse(line).map_err(|e| fail(&None, e.to_string()))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(fail(&None, "request must be a JSON object"));
    }
    let id = value.get("id").cloned().filter(|v| *v != Json::Null);
    if matches!(id, Some(Json::Arr(_) | Json::Obj(_))) {
        return Err(fail(&None, "field `id` must be a JSON scalar"));
    }

    let op = scalar(
        &value,
        &id,
        "op",
        |v| v.as_str().map(str::to_owned),
        "a string",
    )?
    .ok_or_else(|| fail(&id, "missing required field `op`"))?;

    let as_usize = |v: &Json| v.as_u64().and_then(|u| usize::try_from(u).ok());
    let knobs = Knobs {
        machine: scalar(
            &value,
            &id,
            "machine",
            |v| v.as_str().map(str::to_owned),
            "a string",
        )?,
        registers: scalar(&value, &id, "registers", as_usize, "a non-negative integer")?,
        modify: scalar(
            &value,
            &id,
            "modify",
            |v| v.as_u64().and_then(|u| u32::try_from(u).ok()),
            "a non-negative integer",
        )?,
        modify_registers: scalar(
            &value,
            &id,
            "modify_registers",
            as_usize,
            "a non-negative integer",
        )?,
        threads: scalar(&value, &id, "threads", as_usize, "a non-negative integer")?,
        iterations: scalar(
            &value,
            &id,
            "iterations",
            Json::as_u64,
            "a non-negative integer",
        )?,
        validate: scalar(&value, &id, "validate", Json::as_bool, "a boolean")?,
        listings: scalar(&value, &id, "listings", Json::as_bool, "a boolean")?,
        cache: scalar(&value, &id, "cache", Json::as_bool, "a boolean")?,
        timings: scalar(&value, &id, "timings", Json::as_bool, "a boolean")?,
    };

    let request = match op.as_str() {
        "compile" => {
            let source = scalar(
                &value,
                &id,
                "source",
                |v| v.as_str().map(str::to_owned),
                "a string",
            )?
            .ok_or_else(|| fail(&id, "`compile` needs a `source` field"))?;
            let name = scalar(
                &value,
                &id,
                "name",
                |v| v.as_str().map(str::to_owned),
                "a string",
            )?
            .unwrap_or_else(|| "request".to_owned());
            Request::Compile { name, source }
        }
        "kernels" => Request::Kernels {
            kernel: scalar(
                &value,
                &id,
                "kernel",
                |v| v.as_str().map(str::to_owned),
                "a string",
            )?,
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "clear_cache" => Request::ClearCache,
        "save_cache" => Request::SaveCache {
            path: scalar(
                &value,
                &id,
                "path",
                |v| v.as_str().map(str::to_owned),
                "a string",
            )?,
        },
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(fail(
                &id,
                format!(
                    "unknown op `{other}` (expected compile, kernels, stats, \
                     metrics, clear_cache, save_cache, ping or shutdown)"
                ),
            ))
        }
    };
    if !knobs.is_default() && !matches!(request, Request::Compile { .. } | Request::Kernels { .. })
    {
        return Err(fail(&id, format!("op `{op}` takes no configuration knobs")));
    }
    Ok(Envelope { id, request, knobs })
}

fn envelope(id: &Option<Json>, ok: bool, mut rest: Vec<(String, Json)>) -> String {
    let mut fields = Vec::with_capacity(rest.len() + 2);
    if let Some(id) = id {
        fields.push(("id".to_owned(), id.clone()));
    }
    fields.push(("ok".to_owned(), Json::Bool(ok)));
    fields.append(&mut rest);
    Json::Obj(fields).render()
}

/// A success response carrying a compilation report.
pub fn report_line(id: &Option<Json>, report: &CompilationReport) -> String {
    envelope(
        id,
        true,
        vec![("report".to_owned(), report.to_json_value())],
    )
}

/// A success response carrying cache statistics.
pub fn stats_line(id: &Option<Json>, stats: &CacheStats) -> String {
    envelope(id, true, vec![("stats".to_owned(), stats_json(stats))])
}

/// A success response whose payload fields are supplied by the caller
/// (the server assembles the extended `stats` and `metrics` payloads).
pub fn payload_line(id: &Option<Json>, fields: Vec<(String, Json)>) -> String {
    envelope(id, true, fields)
}

/// A success acknowledgement: `{"ok":true,"<flag>":true}`.
pub fn ack_line(id: &Option<Json>, flag: &str) -> String {
    envelope(id, true, vec![(flag.to_owned(), Json::Bool(true))])
}

/// An error response.
pub fn error_line(id: &Option<Json>, message: &str) -> String {
    envelope(id, false, vec![("error".to_owned(), Json::str(message))])
}

/// An error response with a machine-readable kind:
/// `{"ok":false,"error_kind":"…","error":"…"}`.
///
/// The serve tier names its operational failures so clients can react
/// without parsing prose: `busy` (connection cap reached), `shed`
/// (shard queue full), `read_deadline` (no complete request in time)
/// and `compute_deadline` (the compile outran its budget).
pub fn error_kind_line(id: &Option<Json>, kind: &str, message: &str) -> String {
    envelope(
        id,
        false,
        vec![
            ("error_kind".to_owned(), Json::str(kind)),
            ("error".to_owned(), Json::str(message)),
        ],
    )
}

/// [`CacheStats`] as a JSON object (the `stats` response payload).
pub fn stats_json(stats: &CacheStats) -> Json {
    Json::Obj(vec![
        (
            "allocation_hits".to_owned(),
            Json::UInt(stats.allocation_hits),
        ),
        (
            "allocation_misses".to_owned(),
            Json::UInt(stats.allocation_misses),
        ),
        (
            "allocation_entries".to_owned(),
            Json::UInt(stats.allocation_entries as u64),
        ),
        (
            "allocation_evictions".to_owned(),
            Json::UInt(stats.allocation_evictions),
        ),
        ("curve_hits".to_owned(), Json::UInt(stats.curve_hits)),
        ("curve_misses".to_owned(), Json::UInt(stats.curve_misses)),
        (
            "curve_entries".to_owned(),
            Json::UInt(stats.curve_entries as u64),
        ),
        (
            "curve_evictions".to_owned(),
            Json::UInt(stats.curve_evictions),
        ),
        ("loaded".to_owned(), Json::UInt(stats.loaded)),
        ("persisted".to_owned(), Json::UInt(stats.persisted)),
        ("hit_rate".to_owned(), Json::Num(stats.hit_rate())),
    ])
}

/// A success response for `save_cache`: where the snapshot went and
/// what it holds.
pub fn saved_line(id: &Option<Json>, path: &std::path::Path, report: &SaveReport) -> String {
    envelope(
        id,
        true,
        vec![(
            "saved".to_owned(),
            Json::Obj(vec![
                ("path".to_owned(), Json::str(path.display().to_string())),
                (
                    "allocations".to_owned(),
                    Json::UInt(report.allocations as u64),
                ),
                ("curves".to_owned(), Json::UInt(report.curves as u64)),
                ("bytes".to_owned(), Json::UInt(report.bytes as u64)),
            ]),
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_ir::AguSpec;

    #[test]
    fn compile_requests_parse_with_knobs() {
        let envelope = parse_line(
            r#"{"id":"a1","op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }",
               "name":"fir","registers":6,"modify":2,"iterations":8,"validate":false,
               "listings":true,"cache":false,"threads":1,"client_meta":"ignored"}"#,
        )
        .unwrap();
        assert_eq!(envelope.id, Some(Json::str("a1")));
        assert_eq!(
            envelope.request,
            Request::Compile {
                name: "fir".into(),
                source: "for (i = 0; i < 4; i++) { s += x[i]; }".into()
            }
        );
        assert_eq!(envelope.knobs.registers, Some(6));
        assert_eq!(envelope.knobs.modify, Some(2));
        assert_eq!(envelope.knobs.iterations, Some(8));
        assert_eq!(envelope.knobs.validate, Some(false));
        assert_eq!(envelope.knobs.listings, Some(true));
        assert_eq!(envelope.knobs.cache, Some(false));
        assert_eq!(envelope.knobs.threads, Some(1));
        assert!(!envelope.knobs.is_default());
    }

    #[test]
    fn control_requests_parse_without_knobs() {
        for (line, expected) in [
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"metrics"}"#, Request::Metrics),
            (r#"{"op":"clear_cache"}"#, Request::ClearCache),
            (r#"{"op":"ping"}"#, Request::Ping),
            (r#"{"op":"shutdown","id":3}"#, Request::Shutdown),
            (
                r#"{"op":"kernels","kernel":"paper_example"}"#,
                Request::Kernels {
                    kernel: Some("paper_example".into()),
                },
            ),
            (r#"{"op":"kernels"}"#, Request::Kernels { kernel: None }),
        ] {
            let envelope = parse_line(line).expect(line);
            assert_eq!(envelope.request, expected, "{line}");
            assert!(envelope.knobs.is_default());
        }
    }

    #[test]
    fn malformed_lines_are_protocol_errors() {
        for (line, needle) in [
            ("", "invalid JSON"),
            ("{\"op\":", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            ("{\"id\":1}", "missing required field `op`"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"compile"}"#, "needs a `source`"),
            (
                r#"{"op":"compile","source":5}"#,
                "`source` must be a string",
            ),
            (
                r#"{"op":"compile","source":"x","registers":"four"}"#,
                "`registers` must be",
            ),
            (
                r#"{"op":"compile","source":"x","registers":-1}"#,
                "`registers` must be",
            ),
            (
                r#"{"op":"ping","registers":4}"#,
                "takes no configuration knobs",
            ),
            (
                r#"{"op":"metrics","threads":2}"#,
                "takes no configuration knobs",
            ),
            (r#"{"op":"stats","id":[1]}"#, "`id` must be a JSON scalar"),
        ] {
            let err = parse_line(line).expect_err(line);
            assert!(
                err.message.contains(needle),
                "`{line}`: `{}` does not mention `{needle}`",
                err.message
            );
        }
    }

    #[test]
    fn errors_keep_the_readable_id() {
        let err = parse_line(r#"{"id":42,"op":"compile"}"#).unwrap_err();
        assert_eq!(err.id, Some(Json::Int(42)));
        let rendered = error_line(&err.id, &err.message);
        assert!(rendered.starts_with(r#"{"id":42,"ok":false,"error":"#));
    }

    #[test]
    fn knobs_apply_over_a_base_config() {
        let base = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
        let knobs = Knobs {
            registers: Some(2),
            iterations: Some(3),
            validate: Some(false),
            ..Knobs::default()
        };
        let config = knobs.apply(&base).unwrap();
        assert_eq!(config.agu.address_registers(), 2);
        assert_eq!(config.agu.modify_range(), 1, "inherited from base");
        assert_eq!(config.validation_iterations, 3);
        assert!(!config.validate);
        assert!(config.caching, "inherited from base");

        let bad = Knobs {
            registers: Some(0),
            ..Knobs::default()
        };
        assert!(bad.apply(&base).is_err());
    }

    #[test]
    fn machine_knob_selects_whole_descriptions() {
        let base = PipelineConfig::new(raco_ir::AguSpec::new(4, 1).unwrap());

        // Built-in name (and alias) selection.
        let envelope = parse_line(r#"{"op":"kernels","machine":"bwdsp"}"#).unwrap();
        assert_eq!(envelope.knobs.machine.as_deref(), Some("bwdsp"));
        let config = envelope.knobs.apply(&base).unwrap();
        assert_eq!(config.agu, raco_ir::AguSpec::bwdsp_like());

        // Inline description text.
        let knobs = Knobs {
            machine: Some(
                "name = custom\naddress_registers = 3\nupdate_min = 0\nupdate_max = 2\n".to_owned(),
            ),
            ..Knobs::default()
        };
        let config = knobs.apply(&base).unwrap();
        assert_eq!(config.agu.address_registers(), 3);
        assert_eq!(config.agu.update_range(), UpdateRange::new(0, 2).unwrap());

        // Numeric knobs override on top of the selected description
        // without losing its cost table.
        let knobs = Knobs {
            machine: Some("saris".to_owned()),
            registers: Some(2),
            ..Knobs::default()
        };
        let config = knobs.apply(&base).unwrap();
        assert_eq!(config.agu.address_registers(), 2);
        assert_eq!(
            config.agu.cost_table(),
            raco_ir::AguSpec::saris_like().cost_table()
        );

        // Unknown machines and malformed descriptions are positioned,
        // human-readable errors — never a crash.
        let unknown = Knobs {
            machine: Some("z80".to_owned()),
            ..Knobs::default()
        };
        let err = unknown.apply(&base).unwrap_err();
        assert!(err.contains("unknown machine `z80`"), "{err}");
        assert!(err.contains("bwdsp"), "{err}");
        let malformed = Knobs {
            machine: Some("address_registers = 0".to_owned()),
            ..Knobs::default()
        };
        let err = malformed.apply(&base).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn knobs_reject_absurd_register_counts() {
        // Unbounded counts must error (not crash a later snapshot save
        // or stall the per-K allocation sweep).
        let base = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
        for knobs in [
            Knobs {
                registers: Some(MAX_MACHINE_REGISTERS + 1),
                ..Knobs::default()
            },
            Knobs {
                modify_registers: Some(usize::MAX),
                ..Knobs::default()
            },
        ] {
            let err = knobs.apply(&base).unwrap_err();
            assert!(err.contains("exceeds the supported maximum"), "{err}");
        }
        // The boundary itself is accepted.
        let edge = Knobs {
            modify_registers: Some(MAX_MACHINE_REGISTERS),
            ..Knobs::default()
        };
        assert_eq!(
            edge.apply(&base).unwrap().agu.modify_registers(),
            MAX_MACHINE_REGISTERS
        );
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let stats = CacheStats::default();
        for line in [
            stats_line(&Some(Json::Int(1)), &stats),
            ack_line(&None, "pong"),
            error_line(&Some(Json::str("x")), "boom\nboom"),
        ] {
            assert!(!line.contains('\n'), "NDJSON must stay on one line: {line}");
            assert!(Json::parse(&line).is_ok(), "response reparses: {line}");
        }
        assert_eq!(ack_line(&None, "pong"), r#"{"ok":true,"pong":true}"#);
    }
}
