//! # raco-serve — a long-lived compile service over one warm cache
//!
//! Batch compilation (`raco compile`, `raco kernels`) throws its warm
//! allocation cache away when the process exits; real addressing
//! workloads keep coming back with the same access-pattern shapes.
//! This crate keeps one [`Pipeline`](raco_driver::Pipeline) alive
//! behind a newline-delimited JSON protocol ([`protocol`]) served over
//! stdio or TCP ([`server`]), so every request — across clients and
//! connections — amortizes the same two-phase allocation work. Pair it
//! with [`CachePolicy::Bounded`](raco_driver::CachePolicy) so
//! unbounded traffic cannot grow memory without limit.
//!
//! ## Example
//!
//! A server is a plain value; the transports are loops around
//! [`Server::handle_line`], which you can also call directly:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco_serve::Server;
//! use raco_driver::{CachePolicy, PipelineConfig};
//! use raco_ir::AguSpec;
//!
//! let mut config = PipelineConfig::new(AguSpec::new(4, 1)?);
//! config.cache_policy = CachePolicy::Bounded(4096);
//! let server = Server::new(config);
//!
//! // Two identical requests: the second hits the shared warm cache
//! // and compiles to the same result (only timings/counters differ).
//! use raco_driver::json::Json;
//! let request = r#"{"op": "compile",
//!                   "source": "for (i = 0; i < 64; i++) { y[i] = x[i-1] + x[i]; }"}"#;
//! let first = Json::parse(&server.handle_line(request).line)?;
//! let second = Json::parse(&server.handle_line(request).line)?;
//! assert_eq!(
//!     first.get("report").and_then(|r| r.get("units")),
//!     second.get("report").and_then(|r| r.get("units")),
//! );
//!
//! let stats = server.pipeline().cache_stats();
//! assert!(stats.allocation_hits > 0);
//! # Ok(())
//! # }
//! ```
//!
//! Over a transport the exchange is the same, one JSON line each way:
//!
//! ```text
//! → {"id": 1, "op": "compile", "source": "for (i = 0; i < 8; i++) { s += x[i]; }"}
//! ← {"id":1,"ok":true,"report":{…}}
//! → {"id": 2, "op": "stats"}
//! ← {"id":2,"ok":true,"stats":{"allocation_hits":1,…}}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metrics;
pub mod protocol;
pub mod server;
mod shard;

pub use protocol::{Envelope, Knobs, ProtocolError, Request};
pub use server::{
    Reply, ServeOptions, Server, DEFAULT_MAX_CONNECTIONS, DEFAULT_QUEUE_DEPTH, MAX_REQUEST_LINE,
};
