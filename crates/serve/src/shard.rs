//! Shard workers: per-core pipelines behind a consistent-hash router.
//!
//! The serve tier splits one process-wide cache into N independent
//! shards, each owning its own [`Pipeline`] (and therefore its own
//! allocation cache) and a single worker thread. Requests are routed
//! by a consistent hash of the *canonical* cache key — the same
//! shift-normalized [`CanonicalPattern`] the allocation cache keys on
//! — so every occurrence of a shape lands on the same shard: shard
//! caches stay hot and mutually disjoint instead of each shard slowly
//! re-deriving the whole working set.
//!
//! Dispatch is a bounded queue per shard. A full queue is load
//! shedding, not backpressure: the submitter gets [`ShedError`]
//! immediately and answers the client with an `ok:false` shed
//! response, keeping tail latency bounded when offered load exceeds
//! capacity. Compute deadlines ride on the reply channel: the
//! connection thread waits on [`std::sync::mpsc::Receiver::recv_timeout`]
//! and walks away on expiry — the worker finishes the compile anyway
//! (warming the shard cache for the retry) and its send lands in a
//! dropped channel.
//!
//! [`CanonicalPattern`]: raco_ir::CanonicalPattern

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use raco_driver::{CacheStats, Pipeline, PipelineConfig};
use raco_ir::{dsl, CanonicalPattern};
use raco_obs::Histogram;

/// How long an idle worker sleeps between stop-flag checks.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// One unit of shard work: a closure run against the shard's pipeline.
/// The closure owns its inputs and its reply channel, so the worker
/// thread needs no lifetime tie to the submitting connection.
pub(crate) type Job = Box<dyn FnOnce(&Pipeline) + Send>;

/// A submit that found the shard's queue full. Carries what the error
/// response needs to say.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShedError {
    /// Which shard refused.
    pub(crate) shard: usize,
    /// The queue bound that was hit.
    pub(crate) depth: usize,
}

/// One shard: a pipeline (with its own cache), a bounded job queue and
/// the counters the `metrics` op reports per shard.
pub(crate) struct Shard {
    /// Position in the shard set (stable across the server's life).
    pub(crate) index: usize,
    /// The shard's own pipeline; its allocation cache is the shard's
    /// slice of the working set.
    pub(crate) pipeline: Pipeline,
    /// Requests executed by this shard's worker (dispatch mode) or
    /// inline on its pipeline (single-shard fast path).
    pub(crate) executed: AtomicU64,
    /// Per-shard compute latency (nanoseconds); the `metrics` op merges
    /// every shard's histogram into the aggregate via
    /// [`Histogram::merge_snapshot`].
    pub(crate) latency: Histogram,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
    depth: usize,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("index", &self.index)
            .field("executed", &self.executed)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

impl Shard {
    fn new(index: usize, pipeline: Pipeline, depth: usize) -> Self {
        Shard {
            index,
            pipeline,
            executed: AtomicU64::new(0),
            latency: Histogram::new(),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            depth,
        }
    }

    /// Enqueues one job, failing immediately when the queue is at its
    /// bound — the caller sheds the request rather than waiting.
    pub(crate) fn submit(&self, job: Job) -> Result<(), ShedError> {
        let mut queue = self.queue.lock().expect("shard queue poisoned");
        if queue.len() >= self.depth {
            return Err(ShedError {
                shard: self.index,
                depth: self.depth,
            });
        }
        queue.push_back(job);
        drop(queue);
        self.ready.notify_one();
        Ok(())
    }

    /// Runs one job inline on the calling thread (single-shard fast
    /// path: no queue, no handoff, identical accounting).
    pub(crate) fn run_inline(&self, job: impl FnOnce(&Pipeline)) {
        // Counted *before* the job runs: a job's reply can release its
        // client before the job closure fully unwinds, and a metrics
        // read racing that window must still see the request.
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.latency.time(|| job(&self.pipeline));
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("shard queue poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.stop.load(Ordering::Acquire) {
                        break None;
                    }
                    let (guard, _timeout) = self
                        .ready
                        .wait_timeout(queue, WORKER_POLL)
                        .expect("shard queue poisoned");
                    queue = guard;
                }
            };
            match job {
                Some(job) => {
                    // Same ordering as `run_inline`: count, then run.
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    self.latency.time(|| job(&self.pipeline));
                }
                None => return,
            }
        }
    }
}

/// The full shard set plus its worker threads. In the single-shard,
/// no-deadline configuration no workers are spawned and jobs run
/// inline on the submitting thread (the pre-shard fast path — tests
/// and loopback benches keep their zero-handoff latency).
#[derive(Debug)]
pub(crate) struct ShardSet {
    shards: Vec<Arc<Shard>>,
    workers: Vec<JoinHandle<()>>,
    /// `true` when jobs run on the submitting thread instead of the
    /// queue (implies `shards.len() == 1`).
    inline: bool,
}

impl ShardSet {
    /// Builds `count` shards, each with its own pipeline cloned from
    /// `config`. `inline` skips the worker threads (single shard only).
    pub(crate) fn new(config: &PipelineConfig, count: usize, depth: usize, inline: bool) -> Self {
        assert!(count >= 1, "a server needs at least one shard");
        assert!(!inline || count == 1, "inline execution implies one shard");
        let shards: Vec<Arc<Shard>> = (0..count)
            .map(|index| {
                Arc::new(Shard::new(
                    index,
                    Pipeline::with_config(config.clone()),
                    depth,
                ))
            })
            .collect();
        let workers = if inline {
            Vec::new()
        } else {
            shards
                .iter()
                .map(|shard| {
                    let shard = Arc::clone(shard);
                    std::thread::Builder::new()
                        .name(format!("raco-shard-{}", shard.index))
                        .spawn(move || shard.worker_loop())
                        .expect("spawn shard worker")
                })
                .collect()
        };
        ShardSet {
            shards,
            workers,
            inline,
        }
    }

    /// Wraps an existing pipeline as a one-shard inline set (the
    /// [`Server::with_pipeline`](crate::Server::with_pipeline) path).
    pub(crate) fn from_pipeline(pipeline: Pipeline, depth: usize) -> Self {
        ShardSet {
            shards: vec![Arc::new(Shard::new(0, pipeline, depth))],
            workers: Vec::new(),
            inline: true,
        }
    }

    /// `true` when jobs run on the submitting thread.
    pub(crate) fn is_inline(&self) -> bool {
        self.inline
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The shard a route key consistently maps to.
    pub(crate) fn route(&self, key: u64) -> &Arc<Shard> {
        &self.shards[jump_hash(key, self.shards.len())]
    }

    /// Shard 0's pipeline: the compatibility handle for callers that
    /// predate sharding (`Server::pipeline()`).
    pub(crate) fn first_pipeline(&self) -> &Pipeline {
        &self.shards[0].pipeline
    }

    /// Cache statistics folded across every shard.
    pub(crate) fn aggregate_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.absorb(&shard.pipeline.cache_stats());
        }
        total
    }
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.stop.store(true, Ordering::Release);
        }
        for shard in &self.shards {
            shard.ready.notify_one();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Jump consistent hash (Lamping & Veach): maps `key` to a bucket in
/// `[0, buckets)` such that growing the bucket count moves only
/// `1/buckets` of the keyspace. Dependency-free and allocation-free —
/// the route decision costs a few multiplies.
pub(crate) fn jump_hash(mut key: u64, buckets: usize) -> usize {
    debug_assert!(buckets >= 1);
    let mut bucket: i64 = -1;
    let mut next: i64 = 0;
    while next < buckets as i64 {
        bucket = next;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        next = ((bucket.wrapping_add(1) as f64) * ((1u64 << 31) as f64)
            / (((key >> 33).wrapping_add(1)) as f64)) as i64;
    }
    bucket as usize
}

/// 64-bit FNV-1a over a byte slice (the route key's mixing primitive).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mix(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The machine/options part of a route key: requests for different
/// machines key differently (their cache entries are disjoint anyway),
/// so mixed-machine traffic spreads across shards even for one shape.
fn machine_key(config: &PipelineConfig) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    // The whole spec, not a field subset: machines differing only in
    // update-range shape or cost table must route (and cache)
    // separately.
    config.agu.hash(&mut hasher);
    config.effective_options().hash(&mut hasher);
    hasher.finish()
}

/// The consistent-hash route key for a `compile` request: the FNV fold
/// of every loop's canonical pattern fingerprints (the allocation
/// cache's own key material) mixed with the machine key. Sources that
/// fail to parse key on their raw text — the parse error itself is
/// deterministic, so re-sends of a broken program still hit one shard.
pub(crate) fn compile_route_key(source: &str, config: &PipelineConfig) -> u64 {
    let mut key = machine_key(config);
    match dsl::parse_program(source) {
        Ok(specs) => {
            for spec in &specs {
                for pattern in spec.patterns() {
                    key = mix(key, CanonicalPattern::of(&pattern).fingerprint());
                }
            }
        }
        Err(_) => key = mix(key, fnv1a(source.as_bytes())),
    }
    key
}

/// The route key for a `kernels` request: the named kernel (or the
/// whole suite) under the requested machine.
pub(crate) fn kernels_route_key(kernel: Option<&str>, config: &PipelineConfig) -> u64 {
    mix(
        machine_key(config),
        fnv1a(kernel.unwrap_or("__suite__").as_bytes()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_ir::AguSpec;
    use std::sync::mpsc;

    fn config() -> PipelineConfig {
        PipelineConfig::new(AguSpec::new(4, 1).unwrap())
    }

    #[test]
    fn jump_hash_is_stable_and_in_range() {
        for buckets in 1..9 {
            for key in 0..256u64 {
                let bucket = jump_hash(key, buckets);
                assert!(bucket < buckets);
                assert_eq!(bucket, jump_hash(key, buckets), "deterministic");
            }
        }
        // Growing the bucket count only moves keys *to the new bucket*:
        // every key either stays put or lands on the added shard.
        for key in 0..4096u64 {
            let before = jump_hash(key, 4);
            let after = jump_hash(key, 5);
            assert!(after == before || after == 4, "{key}: {before} -> {after}");
        }
    }

    #[test]
    fn jump_hash_spreads_keys_over_buckets() {
        let buckets = 8;
        let mut counts = vec![0u32; buckets];
        for key in 0..8000u64 {
            counts[jump_hash(key.wrapping_mul(0x9e37_79b9_7f4a_7c15), buckets)] += 1;
        }
        for (bucket, &count) in counts.iter().enumerate() {
            assert!(
                (500..1500).contains(&count),
                "bucket {bucket} holds {count} of 8000 keys"
            );
        }
    }

    #[test]
    fn shifted_sources_share_a_route_key() {
        let config = config();
        // Same shape, shifted base offsets: identical canonical form.
        let a = compile_route_key(
            "for (i = 0; i < 64; i++) { y[i] = x[i] + x[i+1]; }",
            &config,
        );
        let b = compile_route_key(
            "for (i = 7; i < 71; i++) { y[i] = x[i] + x[i+1]; }",
            &config,
        );
        assert_eq!(a, b, "canonical keying ignores the shift");
        // A different shape keys differently.
        let c = compile_route_key(
            "for (i = 0; i < 64; i++) { y[i] = x[i] + x[i+5]; }",
            &config,
        );
        assert_ne!(a, c);
        // And so does a different machine.
        let other = PipelineConfig::new(AguSpec::new(2, 1).unwrap());
        assert_ne!(
            a,
            compile_route_key("for (i = 0; i < 64; i++) { y[i] = x[i] + x[i+1]; }", &other)
        );
    }

    #[test]
    fn unparsable_sources_route_deterministically() {
        let config = config();
        let a = compile_route_key("for (i = 0; i++) {", &config);
        let b = compile_route_key("for (i = 0; i++) {", &config);
        assert_eq!(a, b);
    }

    #[test]
    fn submit_sheds_when_the_queue_is_full() {
        let set = ShardSet::new(&config(), 1, 1, false);
        let shard = &set.shards()[0];
        // Park the worker on a job that waits for permission to finish,
        // then fill the queue behind it.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        shard
            .submit(Box::new(move |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            }))
            .unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker picks up the first job");
        shard
            .submit(Box::new(|_| {}))
            .expect("queue has room for 1");
        let shed = shard.submit(Box::new(|_| {})).expect_err("queue is full");
        assert_eq!(shed, ShedError { shard: 0, depth: 1 });
        release_tx.send(()).unwrap();
    }

    #[test]
    fn workers_execute_jobs_and_count_them() {
        let set = ShardSet::new(&config(), 2, 16, false);
        let (tx, rx) = mpsc::channel();
        for i in 0..8u64 {
            let tx = tx.clone();
            set.route(i)
                .submit(Box::new(move |_| tx.send(i).unwrap()))
                .unwrap();
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        let executed: u64 = set
            .shards()
            .iter()
            .map(|s| s.executed.load(Ordering::Relaxed))
            .sum();
        assert_eq!(executed, 8);
    }
}
